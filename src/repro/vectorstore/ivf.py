"""Inverted-file (IVF) approximate nearest-neighbour index.

Vectors are partitioned into ``nlist`` cells by k-means; a query probes the
``nprobe`` closest cells only.  With ``nprobe == nlist`` the index is exact
and matches :class:`~repro.vectorstore.flat.FlatIndex` — a property the test
suite exercises.

Adds after training no longer throw the quantizer away: a new vector is
assigned to its nearest existing centroid in O(nlist), and only when the
incrementally-added fraction exceeds ``drift_threshold`` of the trained
size does the index schedule a full retrain (lazily, on the next
search).  Rows live in one contiguous
:class:`~repro.vectorstore.storage.VectorArena`, so probing gathers
candidate rows with a fancy index instead of a per-search ``np.vstack``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .flat import SearchResult, _LIVE_INDEXES, topk_order
from .metrics import METRICS, normalize, pairwise_scores
from .storage import VectorArena

__all__ = ["IVFIndex"]


def _kmeans(
    data: np.ndarray, k: int, rng: np.random.Generator, iters: int = 25
) -> np.ndarray:
    """Plain Lloyd's k-means; returns the centroid matrix.

    Empty clusters are reseeded from the points farthest from their
    assigned centroids (a point per empty cell, farthest first), so every
    one of the ``k`` cells stays usable instead of orbiting a stale
    centroid no point maps to.
    """
    k = min(k, len(data))
    centroids = data[rng.choice(len(data), size=k, replace=False)].copy()
    for _ in range(iters):
        dists = -pairwise_scores(data, centroids, "l2")
        assign = np.argmin(dists, axis=1)
        empty = [c for c in range(k) if not np.any(assign == c)]
        if empty:
            # Farthest-point reseed: steal the worst-served points.  Each
            # stolen point seeds one empty cell and is excluded from the
            # pool so two empty cells never collapse onto the same seed.
            point_dist = dists[np.arange(len(data)), assign]
            farthest = np.argsort(-point_dist)
            for c, idx in zip(empty, farthest):
                centroids[c] = data[idx]
                assign[idx] = c
        moved = bool(empty)
        for c in range(k):
            members = data[assign == c]
            if len(members) == 0:
                continue
            new_centroid = members.mean(axis=0)
            if not np.allclose(new_centroid, centroids[c]):
                centroids[c] = new_centroid
                moved = True
        if not moved:
            break
    return centroids


class IVFIndex:
    """IVF index with k-means coarse quantizer.

    Build with :meth:`train` + :meth:`add` (or just :meth:`add`, which
    triggers lazy training on first search).  ``drift_threshold`` is the
    fraction of incrementally-assigned vectors (relative to the trained
    size) tolerated before the quantizer is rebuilt.
    """

    def __init__(
        self,
        dim: int,
        nlist: int = 16,
        nprobe: int = 4,
        metric: str = "cosine",
        seed: int = 0,
        drift_threshold: float = 0.5,
    ) -> None:
        if nprobe <= 0 or nlist <= 0:
            raise ValueError("nlist and nprobe must be positive")
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        self._arena = VectorArena(dim)
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self.metric = metric
        self.drift_threshold = drift_threshold
        self._rng = np.random.default_rng(seed)
        self._keys: list[Any] = []
        self._payloads: list[Any] = []
        self._key_pos: dict[Any, int] = {}
        self._centroids: np.ndarray | None = None
        self._cells: list[list[int]] | None = None
        self._trained_size = 0
        self._drifted = 0
        self._searches = 0
        _LIVE_INDEXES.add(self)

    @property
    def dim(self) -> int:
        return self._arena.dim

    @property
    def rebuilds(self) -> int:
        return self._arena.rebuilds

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Any) -> bool:
        return key in self._key_pos

    def _probe_form(self, rows: np.ndarray) -> np.ndarray:
        """Rows as the quantizer sees them (normalized under cosine)."""
        return normalize(rows) if self.metric == "cosine" else rows

    def add(self, key: Any, vector: Sequence[float], payload: Any = None) -> None:
        if key in self._key_pos:
            raise ValueError(f"duplicate key {key!r}")
        position = self._arena.append(vector)
        self._key_pos[key] = position
        self._keys.append(key)
        self._payloads.append(payload)
        if not self.is_trained:
            return
        # Incremental assignment: nearest existing centroid in O(nlist);
        # schedule a full retrain only once drift crosses the threshold.
        row = self._probe_form(self._arena.row(position).reshape(1, -1))
        cell = int(np.argmax(pairwise_scores(row, self._centroids, "l2")[0]))
        self._cells[cell].append(position)
        self._drifted += 1
        if self._drifted > self.drift_threshold * max(1, self._trained_size):
            self._centroids = None  # retrain lazily on next search
            self._cells = None

    def add_batch(
        self,
        keys: Sequence[Any],
        vectors: np.ndarray,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        keys = list(keys)
        payloads = list(payloads) if payloads is not None else [None] * len(keys)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        for key, vec, payload in zip(keys, vectors, payloads):
            self.add(key, vec, payload)

    def train(self) -> None:
        """(Re)build the coarse quantizer and cell assignments."""
        if not len(self._keys):
            raise ValueError("cannot train an empty index")
        data = self._probe_form(self._arena.view())
        self._centroids = _kmeans(data, self.nlist, self._rng)
        assign = np.argmax(pairwise_scores(data, self._centroids, "l2"), axis=1)
        self._cells = [[] for _ in range(len(self._centroids))]
        for idx, cell in enumerate(assign):
            self._cells[cell].append(idx)
        self._trained_size = len(self._keys)
        self._drifted = 0

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def search(self, query: Sequence[float], k: int = 5) -> list[SearchResult]:
        if not len(self._keys):
            return []
        if not self.is_trained:
            self.train()
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        if query.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[1]}")
        self._searches += 1
        probe_query = self._probe_form(query)
        cell_scores = pairwise_scores(probe_query, self._centroids, "l2")[0]
        probe = np.argsort(-cell_scores)[: self.nprobe]
        candidates = [idx for cell in probe for idx in self._cells[cell]]
        if not candidates:
            return []
        candidate_ids = np.asarray(candidates, dtype=np.intp)
        matrix = self._arena.view()[candidate_ids]
        scores = pairwise_scores(query, matrix, self.metric)[0]
        order = topk_order(scores, k)
        return [
            SearchResult(
                key=self._keys[candidates[i]],
                score=float(scores[i]),
                payload=self._payloads[candidates[i]],
            )
            for i in order
        ]

    def search_batch(self, queries: np.ndarray, k: int = 5) -> list[list[SearchResult]]:
        return [self.search(q, k) for q in np.atleast_2d(queries)]

    def search_counters(self) -> dict:
        return {"searches": self._searches}
