"""Inverted-file (IVF) approximate nearest-neighbour index.

Vectors are partitioned into ``nlist`` cells by k-means; a query probes the
``nprobe`` closest cells only.  With ``nprobe == nlist`` the index is exact
and matches :class:`~repro.vectorstore.flat.FlatIndex` — a property the test
suite exercises.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .flat import SearchResult
from .metrics import normalize, pairwise_scores

__all__ = ["IVFIndex"]


def _kmeans(
    data: np.ndarray, k: int, rng: np.random.Generator, iters: int = 25
) -> np.ndarray:
    """Plain Lloyd's k-means; returns the centroid matrix.

    Empty clusters are reseeded from the points farthest from their
    assigned centroids (a point per empty cell, farthest first), so every
    one of the ``k`` cells stays usable instead of orbiting a stale
    centroid no point maps to.
    """
    k = min(k, len(data))
    centroids = data[rng.choice(len(data), size=k, replace=False)].copy()
    for _ in range(iters):
        dists = -pairwise_scores(data, centroids, "l2")
        assign = np.argmin(dists, axis=1)
        empty = [c for c in range(k) if not np.any(assign == c)]
        if empty:
            # Farthest-point reseed: steal the worst-served points.  Each
            # stolen point seeds one empty cell and is excluded from the
            # pool so two empty cells never collapse onto the same seed.
            point_dist = dists[np.arange(len(data)), assign]
            farthest = np.argsort(-point_dist)
            for c, idx in zip(empty, farthest):
                centroids[c] = data[idx]
                assign[idx] = c
        moved = bool(empty)
        for c in range(k):
            members = data[assign == c]
            if len(members) == 0:
                continue
            new_centroid = members.mean(axis=0)
            if not np.allclose(new_centroid, centroids[c]):
                centroids[c] = new_centroid
                moved = True
        if not moved:
            break
    return centroids


class IVFIndex:
    """IVF index with k-means coarse quantizer.

    Build with :meth:`train` + :meth:`add` (or just :meth:`add`, which
    triggers lazy training on first search).
    """

    def __init__(
        self,
        dim: int,
        nlist: int = 16,
        nprobe: int = 4,
        metric: str = "cosine",
        seed: int = 0,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if nprobe <= 0 or nlist <= 0:
            raise ValueError("nlist and nprobe must be positive")
        self.dim = dim
        self.nlist = nlist
        self.nprobe = min(nprobe, nlist)
        self.metric = metric
        self._rng = np.random.default_rng(seed)
        self._keys: list[Any] = []
        self._payloads: list[Any] = []
        self._rows: list[np.ndarray] = []
        self._centroids: np.ndarray | None = None
        self._cells: list[list[int]] | None = None
        from .flat import _LIVE_INDEXES

        _LIVE_INDEXES.add(self)

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key: Any, vector: Sequence[float], payload: Any = None) -> None:
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vector.shape[0]}")
        self._keys.append(key)
        self._payloads.append(payload)
        self._rows.append(vector)
        self._centroids = None  # retrain lazily
        self._cells = None

    def train(self) -> None:
        """(Re)build the coarse quantizer and cell assignments."""
        if not self._rows:
            raise ValueError("cannot train an empty index")
        data = np.vstack(self._rows)
        if self.metric == "cosine":
            data = normalize(data)
        self._centroids = _kmeans(data, self.nlist, self._rng)
        assign = np.argmax(pairwise_scores(data, self._centroids, "l2"), axis=1)
        self._cells = [[] for _ in range(len(self._centroids))]
        for idx, cell in enumerate(assign):
            self._cells[cell].append(idx)

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    def search(self, query: Sequence[float], k: int = 5) -> list[SearchResult]:
        if not self._rows:
            return []
        if not self.is_trained:
            self.train()
        query = np.asarray(query, dtype=np.float64).reshape(1, -1)
        if query.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query.shape[1]}")
        probe_query = normalize(query) if self.metric == "cosine" else query
        cell_scores = pairwise_scores(probe_query, self._centroids, "l2")[0]
        probe = np.argsort(-cell_scores)[: self.nprobe]
        candidates = [idx for cell in probe for idx in self._cells[cell]]
        if not candidates:
            return []
        matrix = np.vstack([self._rows[i] for i in candidates])
        scores = pairwise_scores(query, matrix, self.metric)[0]
        order = np.argsort(-scores)[: min(k, len(candidates))]
        return [
            SearchResult(
                key=self._keys[candidates[i]],
                score=float(scores[i]),
                payload=self._payloads[candidates[i]],
            )
            for i in order
        ]
