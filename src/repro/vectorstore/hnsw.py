"""Graph-based HNSW approximate nearest-neighbour index.

Hierarchical Navigable Small World (Malkov & Yashunin, 2018) over the
contiguous :class:`~repro.vectorstore.storage.VectorArena`: a stack of
proximity graphs where layer ``l`` holds a geometrically-thinning subset
of the corpus.  A query greedily descends the sparse upper layers to a
good entry point, then runs a best-first beam search (width
``ef_search``) over the dense bottom layer — sub-linear hops instead of
a full corpus scan.

Design points:

* **Deterministic levels** — layer assignment draws from a seeded
  generator, so the same insertion order always builds the same graph
  (and the RNG state rides through ``save``/``load``).
* **Vectorized hops** — each beam expansion gathers the popped node's
  unvisited neighbours into one contiguous candidate block and scores
  it with a single numpy kernel; under cosine the navigation rows are
  pre-normalized so a hop is one matrix-vector product.
* **Diversity heuristic** — neighbour selection keeps a candidate only
  if it is closer to the query than to any already-kept neighbour
  (Algorithm 4), then backfills with the closest pruned candidates so
  every node keeps its full degree.
* **Exact rerank** — the beam only *nominates* candidates; the returned
  top-k is ranked by the exact metric (float64
  :func:`~repro.vectorstore.metrics.pairwise_scores` over the stored
  rows), so results carry true scores, and with ``ef_search >= len(index)``
  the search short-circuits to the brute-force kernel and matches
  :class:`~repro.vectorstore.flat.FlatIndex` exactly.
* **Batched beam search** — :meth:`search_batch` advances every query's
  beam in lockstep: each round collects all (query, neighbour) frontier
  pairs and scores them with one stacked gather+einsum evaluation, so
  numpy dispatch overhead is paid per round, not per query per hop.
"""

from __future__ import annotations

import heapq
import math
import os
from typing import Any, Sequence

import numpy as np

from .. import perf
from .flat import SearchResult, _LIVE_INDEXES, topk_order
from .metrics import normalize, pairwise_scores
from .storage import VectorArena

__all__ = ["HNSWIndex"]


class HNSWIndex:
    """HNSW approximate nearest-neighbour index.

    Implements the same contract as
    :class:`~repro.vectorstore.flat.FlatIndex` (``add`` / ``add_batch`` /
    ``search`` / ``search_batch`` / ``remove`` is **not** supported —
    graph repair is out of scope) with three knobs:

    * ``M`` — max out-degree on the upper layers (``2 * M`` on layer 0);
    * ``ef_construction`` — beam width while inserting;
    * ``ef_search`` — beam width while querying (recall/latency dial;
      ``>= len(index)`` degenerates to exact brute force).

    Vectors are stored float32 by default — at million scale the arena
    is the dominant memory cost and navigation is float32-robust; the
    final rerank always scores in float64.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        M: int = 16,
        ef_construction: int = 100,
        ef_search: int = 64,
        seed: int = 0,
        dtype: Any = np.float32,
    ) -> None:
        if M < 2:
            raise ValueError("M must be >= 2")
        if ef_construction < 1 or ef_search < 1:
            raise ValueError("ef_construction and ef_search must be positive")
        if metric not in ("cosine", "ip", "l2"):
            raise ValueError(f"unknown metric {metric!r}")
        self.metric = metric
        self.M = M
        self.M0 = 2 * M
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.seed = seed
        self._store = VectorArena(dim, dtype=dtype)
        # Navigation rows: the store itself, except under cosine where a
        # parallel arena holds pre-normalized rows (cosine == dot there).
        self._nav = VectorArena(dim, dtype=dtype) if metric == "cosine" else self._store
        # Squared norms for l2 navigation (dist ordering: |x|^2 - 2 q.x).
        self._sq = VectorArena(1, dtype=np.float64) if metric == "l2" else None
        self._keys: list[Any] = []
        self._payloads: list[Any] = []
        self._key_pos: dict[Any, int] = {}
        self._levels: list[int] = []
        self._level0: list[list[int]] = []
        self._upper: list[dict[int, list[int]]] = []  # _upper[l-1] = layer l
        self._entry: int | None = None
        self._max_level = -1
        self._rng = np.random.default_rng(seed)
        self._mult = 1.0 / math.log(M)
        # Search-effort counters (recall proxies on the metrics endpoint).
        self._edges = 0
        self._searches = 0
        self._hops = 0
        self._dist_evals = 0
        self._exhaustive = 0
        _LIVE_INDEXES.add(self)

    # -- basic protocol ----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._store.dim

    @property
    def rebuilds(self) -> int:
        return self._store.rebuilds

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Any) -> bool:
        return key in self._key_pos

    def get_vector(self, key: Any) -> np.ndarray:
        return np.array(self._store.row(self._key_pos[key]), dtype=np.float64)

    def search_counters(self) -> dict:
        return {
            "graph_edges": self._edges,
            "searches": self._searches,
            "hops": self._hops,
            "dist_evals": self._dist_evals,
            "exhaustive_searches": self._exhaustive,
        }

    # -- distance kernels --------------------------------------------------------
    #
    # Navigation works in "distance" space (smaller = closer) so the
    # candidate heap is a plain min-heap.  Values are *ordering-exact*
    # per query, not metric-exact: cosine/ip drop to a negated dot
    # product over the nav rows, l2 drops the query's own norm.

    def _nav_matrix(self) -> np.ndarray:
        return self._nav.view()

    def _nav_query(self, query64: np.ndarray) -> np.ndarray:
        # Cast to the nav dtype so per-hop kernels run (and stream
        # memory) at storage precision instead of upcasting every block.
        if self.metric == "cosine":
            query64 = normalize(query64.reshape(1, -1))[0]
        return np.asarray(query64, dtype=self._nav.dtype)

    def _dist_block(self, qnav: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Distances from a nav-space query row to a block of nodes."""
        rows = self._nav_matrix()[ids]
        dots = rows @ qnav
        self._dist_evals += len(ids)
        if self.metric == "l2":
            return self._sq.view()[ids, 0] - 2.0 * dots
        return -dots

    def _dist_pairs(self, qnav: np.ndarray, owners: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Stacked pair distances: ``dist(qnav[owners[i]], node ids[i])``."""
        rows = self._nav_matrix()[ids]
        dots = np.einsum("ij,ij->i", qnav[owners], rows)
        self._dist_evals += len(ids)
        if self.metric == "l2":
            return self._sq.view()[ids, 0] - 2.0 * dots
        return -dots

    def _node_dist_block(self, node: int, ids: np.ndarray) -> np.ndarray:
        """True pair distances from one stored node to a block of nodes."""
        rows = self._nav_matrix()
        dots = rows[ids] @ rows[node]
        self._dist_evals += len(ids)
        if self.metric == "l2":
            sq = self._sq.view()
            return sq[ids, 0] - 2.0 * dots + sq[node, 0]
        return -dots

    def _pair_dist_matrix(self, ids: np.ndarray) -> np.ndarray:
        """True pairwise distances among a block of stored nodes.

        One Gram-matrix kernel instead of per-candidate calls — this is
        what makes the selection heuristic cheap enough to run on every
        insert and every overflow shrink.
        """
        rows = self._nav_matrix()[ids]
        gram = rows @ rows.T
        self._dist_evals += len(ids) * len(ids)
        if self.metric == "l2":
            sq = self._sq.view()[ids, 0]
            return sq[:, None] + sq[None, :] - 2.0 * gram
        return -gram

    # -- graph plumbing ----------------------------------------------------------

    def _neighbors(self, node: int, level: int) -> list[int]:
        if level == 0:
            return self._level0[node]
        return self._upper[level - 1].get(node, [])

    def _set_neighbors(self, node: int, level: int, neigh: list[int]) -> None:
        if level == 0:
            old = self._level0[node]
            self._level0[node] = neigh
        else:
            old = self._upper[level - 1].get(node, [])
            self._upper[level - 1][node] = neigh
        self._edges += len(neigh) - len(old)

    def _draw_level(self) -> int:
        u = max(float(self._rng.random()), 1e-300)
        return int(-math.log(u) * self._mult)

    def _select_diverse(
        self, d_true: np.ndarray, ids: np.ndarray, M: int
    ) -> np.ndarray:
        """Diversity-pruned neighbour choice (Algorithm 4 + backfill).

        ``d_true`` must be *true* (norm-consistent) distances sorted
        ascending, aligned with ``ids``.  A candidate is kept only when
        it is closer to the query than to every already-kept neighbour —
        tracked with a running elementwise minimum over one precomputed
        pair-distance matrix, so the whole selection costs one Gram
        kernel plus ``M`` vector minimums.  Pruned candidates backfill
        remaining slots closest-first so degree (and graph connectivity)
        is kept.  Returns positions into ``ids``.
        """
        count = len(ids)
        if count <= M:
            return np.arange(count)
        pair = self._pair_dist_matrix(ids)
        min_to_kept = np.full(count, np.inf)
        kept: list[int] = []
        pruned: list[int] = []
        for i in range(count):
            if len(kept) == M:
                break
            if min_to_kept[i] < d_true[i]:
                pruned.append(i)
                continue
            kept.append(i)
            np.minimum(min_to_kept, pair[i], out=min_to_kept)
        for i in pruned:
            if len(kept) == M:
                break
            kept.append(i)
        return np.asarray(kept)

    def _true_dists(self, nav_dists: np.ndarray, qq: float) -> np.ndarray:
        """Nav-space distances -> norm-consistent ones (adds |q|^2 for l2)."""
        if self.metric == "l2":
            return nav_dists + qq
        return nav_dists

    def _shrink(self, node: int, level: int, cap: int) -> None:
        neigh = self._neighbors(node, level)
        if len(neigh) <= cap:
            return
        ids = np.asarray(neigh)
        dists = self._node_dist_block(node, ids)
        order = np.argsort(dists, kind="stable")
        ids = ids[order]
        keep = self._select_diverse(dists[order], ids, cap)
        self._set_neighbors(node, level, ids[keep].tolist())

    def _greedy_descent(
        self, qnav: np.ndarray, ep: int, epd: float, level: int
    ) -> tuple[int, float]:
        """ef=1 greedy walk toward the query on one upper layer."""
        improved = True
        while improved:
            improved = False
            neigh = self._neighbors(ep, level)
            if not neigh:
                break
            self._hops += 1
            dists = self._dist_block(qnav, np.asarray(neigh))
            j = int(np.argmin(dists))
            if dists[j] < epd:
                ep, epd = neigh[j], float(dists[j])
                improved = True
        return ep, epd

    def _search_layer(
        self, qnav: np.ndarray, entry: tuple[float, int], ef: int, level: int
    ) -> list[tuple[float, int]]:
        """Best-first beam search on one layer; returns (dist, node) hits."""
        visited = {entry[1]}
        candidates = [entry]
        results = [(-entry[0], entry[1])]  # max-heap on dist via negation
        while candidates:
            d, node = heapq.heappop(candidates)
            if len(results) >= ef and d > -results[0][0]:
                break
            fresh = [m for m in self._neighbors(node, level) if m not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            self._hops += 1
            dists = self._dist_block(qnav, np.asarray(fresh))
            worst = -results[0][0]
            for m, dm in zip(fresh, dists.tolist()):
                if len(results) < ef or dm < worst:
                    heapq.heappush(candidates, (dm, m))
                    heapq.heappush(results, (-dm, m))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
        return [(-nd, n) for nd, n in results]

    # -- construction ------------------------------------------------------------

    def add(self, key: Any, vector: Sequence[float], payload: Any = None) -> None:
        """Insert one vector; duplicate keys are rejected."""
        if key in self._key_pos:
            raise ValueError(f"duplicate key {key!r}")
        vec64 = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec64.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {vec64.shape[0]}")
        idx = self._store.append(vec64)
        if self.metric == "cosine":
            self._nav.append(normalize(vec64.reshape(1, -1))[0])
        if self._sq is not None:
            nav_row = np.asarray(self._nav_matrix()[idx], dtype=np.float64)
            self._sq.append([float(nav_row @ nav_row)])
        level = self._draw_level()
        self._levels.append(level)
        self._level0.append([])
        while len(self._upper) < level:
            self._upper.append({})
        for l in range(1, level + 1):
            self._upper[l - 1][idx] = []
        self._key_pos[key] = idx
        self._keys.append(key)
        self._payloads.append(payload)

        if self._entry is None:
            self._entry = idx
            self._max_level = level
            return

        qnav = self._nav_query(vec64)
        qq = float(qnav.astype(np.float64) @ qnav.astype(np.float64))
        ep, epd = self._entry, float(self._dist_block(qnav, np.asarray([self._entry]))[0])
        for l in range(self._max_level, level, -1):
            ep, epd = self._greedy_descent(qnav, ep, epd, l)
        for l in range(min(level, self._max_level), -1, -1):
            found = self._search_layer(qnav, (epd, ep), self.ef_construction, l)
            found.sort()
            cap = self.M0 if l == 0 else self.M
            cand_d = np.asarray([d for d, _ in found])
            cand_ids = np.asarray([n for _, n in found])
            keep = self._select_diverse(self._true_dists(cand_d, qq), cand_ids, self.M)
            chosen = cand_ids[keep].tolist()
            self._set_neighbors(idx, l, chosen)
            # Overflow hysteresis: let a backlink list run a few entries
            # past cap before paying for a diversity reselect, which then
            # trims all the way back down — same steady-state graph
            # quality at a fifth of the shrink calls.
            slack = max(2, cap // 4)
            for n in chosen:
                back = self._neighbors(n, l)
                back.append(idx)
                self._edges += 1
                if len(back) > cap + slack:
                    self._shrink(n, l, cap)
            epd, ep = found[0]
        if level > self._max_level:
            self._entry = idx
            self._max_level = level

    def add_batch(
        self,
        keys: Sequence[Any],
        vectors: np.ndarray,
        payloads: Sequence[Any] | None = None,
    ) -> None:
        """Insert many vectors (graph construction stays sequential)."""
        keys = list(keys)
        payloads = list(payloads) if payloads is not None else [None] * len(keys)
        if len(payloads) != len(keys):
            raise ValueError("payloads length must match keys")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if vectors.shape[0] != len(keys):
            raise ValueError("vectors row count must match keys")
        for key, vec, payload in zip(keys, vectors, payloads):
            self.add(key, vec, payload)

    # -- queries -----------------------------------------------------------------

    def _results_from(
        self, query64: np.ndarray, ids: np.ndarray, k: int
    ) -> list[SearchResult]:
        """Exact-rerank candidate ids: float64 metric scores, shared top-k."""
        rows = np.asarray(self._store.view()[ids], dtype=np.float64)
        scores = pairwise_scores(query64.reshape(1, -1), rows, self.metric)[0]
        top = topk_order(scores, k)
        return [
            SearchResult(
                key=self._keys[ids[i]],
                score=float(scores[i]),
                payload=self._payloads[ids[i]],
            )
            for i in top
        ]

    def _brute_force(self, query64: np.ndarray, k: int) -> list[SearchResult]:
        self._exhaustive += 1
        self._dist_evals += len(self)
        return self._results_from(query64, np.arange(len(self)), k)

    def _check_query(self, query) -> np.ndarray:
        query64 = np.asarray(query, dtype=np.float64).reshape(-1)
        if query64.shape[0] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {query64.shape[0]}")
        return query64

    def _descend(self, qnav: np.ndarray) -> tuple[int, float]:
        ep = self._entry
        epd = float(self._dist_block(qnav, np.asarray([ep]))[0])
        for l in range(self._max_level, 0, -1):
            ep, epd = self._greedy_descent(qnav, ep, epd, l)
        return ep, epd

    def search(self, query: Sequence[float], k: int = 5) -> list[SearchResult]:
        """Top-``k`` by beam search + exact rerank (largest score first)."""
        if not len(self):
            return []
        query64 = self._check_query(query)
        self._searches += 1
        perf.incr("ann.searches")
        ef = max(self.ef_search, k)
        if ef >= len(self):
            return self._brute_force(query64, k)
        qnav = self._nav_query(query64)
        ep, epd = self._descend(qnav)
        found = self._search_layer(qnav, (epd, ep), ef, 0)
        ids = np.asarray([n for _, n in found])
        return self._results_from(query64, ids, k)

    def search_batch(self, queries: np.ndarray, k: int = 5) -> list[list[SearchResult]]:
        """Lockstep batched beam search over the bottom layer.

        Every round pops one beam candidate per live query, gathers all
        their unvisited neighbours as (query, node) pairs, and scores
        the whole frontier with one stacked gather+einsum kernel — the
        per-hop numpy dispatch cost is shared across the batch.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {queries.shape[1]}")
        batch = queries.shape[0]
        if not len(self):
            return [[] for _ in range(batch)]
        self._searches += batch
        perf.incr("ann.searches", batch)
        ef = max(self.ef_search, k)
        if ef >= len(self):
            self._exhaustive += batch
            self._dist_evals += batch * len(self)
            all_rows = np.asarray(self._store.view(), dtype=np.float64)
            scores = pairwise_scores(queries, all_rows, self.metric)
            out = []
            for row in scores:
                top = topk_order(row, k)
                out.append(
                    [
                        SearchResult(
                            key=self._keys[i], score=float(row[i]), payload=self._payloads[i]
                        )
                        for i in top
                    ]
                )
            return out

        qnav = np.asarray(
            normalize(queries) if self.metric == "cosine" else queries,
            dtype=self._nav.dtype,
        )
        beams = []
        for b in range(batch):
            ep, epd = self._descend(qnav[b])
            beams.append(
                {
                    "visited": {ep},
                    "cand": [(epd, ep)],
                    "result": [(-epd, ep)],
                }
            )
        active = set(range(batch))
        while active:
            # Frontier pairs arrive in owner-contiguous spans, so the
            # scatter below works a span at a time with local bindings.
            spans: list[tuple[int, int, int]] = []  # (owner, start, stop)
            frontier: list[int] = []
            for b in list(active):
                beam = beams[b]
                expanded = False
                while beam["cand"]:
                    d, node = heapq.heappop(beam["cand"])
                    if len(beam["result"]) >= ef and d > -beam["result"][0][0]:
                        beam["cand"] = []
                        break
                    fresh = [
                        m for m in self._neighbors(node, 0)
                        if m not in beam["visited"]
                    ]
                    if fresh:
                        beam["visited"].update(fresh)
                        spans.append((b, len(frontier), len(frontier) + len(fresh)))
                        frontier.extend(fresh)
                        expanded = True
                        break
                if not expanded:
                    active.discard(b)
            if not frontier:
                break
            self._hops += len(spans)
            owners = np.repeat(
                np.asarray([s[0] for s in spans]),
                np.asarray([s[2] - s[1] for s in spans]),
            )
            frontier_ids = np.asarray(frontier)
            dists = self._dist_pairs(qnav, owners, frontier_ids).tolist()
            for b, start, stop in spans:
                beam = beams[b]
                cand, result = beam["cand"], beam["result"]
                for j in range(start, stop):
                    dval = dists[j]
                    if len(result) < ef or dval < -result[0][0]:
                        heapq.heappush(cand, (dval, frontier[j]))
                        heapq.heappush(result, (-dval, frontier[j]))
                        if len(result) > ef:
                            heapq.heappop(result)
        return [
            self._results_from(
                queries[b], np.asarray([n for _, n in beams[b]["result"]]), k
            )
            for b in range(batch)
        ]

    # -- persistence -----------------------------------------------------------

    def save(self, prefix: str | os.PathLike) -> None:
        """Persist to ``<prefix>.npy`` + ``<prefix>.json`` + ``<prefix>.graph.npz``.

        Vectors go through the arena (mmap-loadable); the graph packs
        each layer as CSR int32 arrays; keys/payloads/levels and the RNG
        state ride the JSON sidecar, so a reloaded index keeps building
        deterministically.
        """
        prefix = os.fspath(prefix)
        arrays: dict[str, np.ndarray] = {}
        indptr = np.zeros(len(self._level0) + 1, dtype=np.int64)
        for i, neigh in enumerate(self._level0):
            indptr[i + 1] = indptr[i] + len(neigh)
        arrays["l0_indptr"] = indptr
        arrays["l0_indices"] = np.asarray(
            [m for neigh in self._level0 for m in neigh], dtype=np.int32
        )
        for l, layer in enumerate(self._upper, start=1):
            nodes = sorted(layer)
            ptr = np.zeros(len(nodes) + 1, dtype=np.int64)
            for i, node in enumerate(nodes):
                ptr[i + 1] = ptr[i] + len(layer[node])
            arrays[f"l{l}_nodes"] = np.asarray(nodes, dtype=np.int64)
            arrays[f"l{l}_indptr"] = ptr
            arrays[f"l{l}_indices"] = np.asarray(
                [m for node in nodes for m in layer[node]], dtype=np.int32
            )
        tmp = prefix + ".graph.npz.tmp"
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp, prefix + ".graph.npz")
        self._store.save(
            prefix,
            sidecar={
                "index": "hnsw",
                "metric": self.metric,
                "M": self.M,
                "ef_construction": self.ef_construction,
                "ef_search": self.ef_search,
                "seed": self.seed,
                "keys": self._keys,
                "payloads": self._payloads,
                "levels": self._levels,
                "entry": self._entry,
                "max_level": self._max_level,
                "num_upper": len(self._upper),
                "rng_state": self._rng.bit_generator.state,
            },
        )

    @classmethod
    def load(cls, prefix: str | os.PathLike, mmap: bool = True) -> "HNSWIndex":
        """Reopen a saved index; ``mmap=True`` maps vectors zero-copy.

        Under ``ip``/``l2`` navigation runs directly on the mapped rows;
        under cosine the normalized navigation rows are recomputed once.
        """
        prefix = os.fspath(prefix)
        arena, sidecar = VectorArena.load(prefix, mmap=mmap)
        index = cls(
            arena.dim,
            metric=sidecar["metric"],
            M=sidecar["M"],
            ef_construction=sidecar["ef_construction"],
            ef_search=sidecar["ef_search"],
            seed=sidecar["seed"],
            dtype=arena.dtype,
        )
        index._store = arena
        if index.metric == "cosine":
            nav = VectorArena(arena.dim, dtype=arena.dtype)
            nav.extend(normalize(np.asarray(arena.view(), dtype=np.float64)))
            index._nav = nav
        else:
            index._nav = arena
        if index._sq is not None:
            sq = VectorArena(1, dtype=np.float64)
            rows = np.asarray(arena.view(), dtype=np.float64)
            sq.extend(np.einsum("ij,ij->i", rows, rows).reshape(-1, 1))
            index._sq = sq
        index._keys = list(sidecar["keys"])
        index._payloads = list(sidecar["payloads"])
        index._key_pos = {key: i for i, key in enumerate(index._keys)}
        index._levels = list(sidecar["levels"])
        index._entry = sidecar["entry"]
        index._max_level = sidecar["max_level"]
        index._rng.bit_generator.state = sidecar["rng_state"]
        if len(index._keys) != len(arena):
            raise ValueError("sidecar keys do not match stored vectors")
        with np.load(prefix + ".graph.npz") as graph:
            indptr = graph["l0_indptr"]
            indices = graph["l0_indices"]
            index._level0 = [
                indices[indptr[i] : indptr[i + 1]].tolist()
                for i in range(len(indptr) - 1)
            ]
            index._upper = []
            for l in range(1, sidecar["num_upper"] + 1):
                nodes = graph[f"l{l}_nodes"]
                ptr = graph[f"l{l}_indptr"]
                idx = graph[f"l{l}_indices"]
                index._upper.append(
                    {
                        int(node): idx[ptr[i] : ptr[i + 1]].tolist()
                        for i, node in enumerate(nodes)
                    }
                )
        index._edges = sum(len(n) for n in index._level0) + sum(
            len(n) for layer in index._upper for n in layer.values()
        )
        return index
