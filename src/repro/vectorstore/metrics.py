"""Similarity/distance metrics shared by the vector indexes."""

from __future__ import annotations

import numpy as np

__all__ = ["METRICS", "pairwise_scores", "normalize"]


def normalize(matrix: np.ndarray) -> np.ndarray:
    """L2-normalize rows; zero rows are left as zeros."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    norms[norms == 0] = 1.0
    return matrix / norms


def _cosine(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    return normalize(queries) @ normalize(database).T


def _inner_product(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    return np.asarray(queries, dtype=np.float64) @ np.asarray(database, dtype=np.float64).T


def _neg_l2(queries: np.ndarray, database: np.ndarray) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float64)
    q2 = np.sum(queries**2, axis=1, keepdims=True)
    d2 = np.sum(database**2, axis=1)
    sq = np.maximum(q2 + d2 - 2.0 * queries @ database.T, 0.0)
    return -np.sqrt(sq)


#: Score functions; larger is always better (L2 is negated).
METRICS = {
    "cosine": _cosine,
    "ip": _inner_product,
    "l2": _neg_l2,
}


def pairwise_scores(
    queries: np.ndarray, database: np.ndarray, metric: str = "cosine"
) -> np.ndarray:
    """Score matrix of shape (num_queries, num_database); larger = closer."""
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(METRICS)}")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    database = np.atleast_2d(np.asarray(database, dtype=np.float64))
    return METRICS[metric](queries, database)
