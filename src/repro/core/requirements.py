"""Natural-language requirement interpretation.

ChatLS accepts free-form user requirements ("optimize this design for
timing", "reduce area but keep timing closure").  This module normalizes
them into a structured objective used for prompt construction and for
choosing the reranking characteristic in SynthRAG (Eq. 5's ``c_i``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Requirement", "parse_requirement"]


@dataclass(frozen=True)
class Requirement:
    """Structured form of a user's customization request."""

    text: str
    objective: str  # "timing" | "area" | "power" | "balanced"
    keep_timing: bool = True

    @property
    def rerank_characteristic(self) -> str:
        return {"timing": "cps", "area": "area", "power": "leakage"}.get(
            self.objective, "cps"
        )


_TIMING_WORDS = ("timing", "slack", "wns", "tns", "speed", "frequency", "delay", "violation")
_AREA_WORDS = ("area", "size", "smaller", "gate count", "cell count")
_POWER_WORDS = ("power", "leakage", "energy")


def parse_requirement(text: str) -> Requirement:
    """Classify a natural-language requirement into an objective."""
    lowered = text.lower()

    def score(words: tuple[str, ...]) -> int:
        return sum(1 for w in words if w in lowered)

    scores = {
        "timing": score(_TIMING_WORDS),
        "area": score(_AREA_WORDS),
        "power": score(_POWER_WORDS),
    }
    best = max(scores, key=scores.get)
    objective = best if scores[best] > 0 else "timing"
    # "reduce area without breaking timing" style phrasing keeps the
    # timing guard on; explicit "ignore timing" drops it.
    keep_timing = not re.search(r"ignore\s+timing|timing\s+не|at any cost", lowered)
    return Requirement(text=text, objective=objective, keep_timing=keep_timing)
