"""The Generator: drafts a customized synthesis script (paper Fig. 2).

Builds the grounded prompt — user requirement, baseline script, tool
report, CircuitMentor analysis, SynthRAG strategy retrievals and manual
excerpts — and asks the core LLM for a draft script.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..llm.base import LLMClient
from ..llm.prompts import build_prompt, extract_script
from ..mentor.analyzer import DesignAnalysis
from ..rag.knowledge import render_strategy_section, strategies_for_pathologies
from ..rag.synthrag import SynthRAG
from .requirements import Requirement

__all__ = ["DraftResult", "Generator"]


@dataclass
class DraftResult:
    """One drafted script plus the prompt context that produced it."""

    script: str
    prompt: str
    completion_text: str
    strategies_used: list[str]


class Generator:
    """LLM script drafter grounded by analysis + retrieval."""

    def __init__(self, llm: LLMClient, rag: SynthRAG) -> None:
        self.llm = llm
        self.rag = rag

    def draft(
        self,
        requirement: Requirement,
        baseline_script: str,
        tool_report: str,
        analysis: DesignAnalysis,
        seed: int = 0,
        k_strategies: int = 2,
    ) -> DraftResult:
        """Draft a customized script for one design."""
        with obs.span("chatls.draft", seed=seed) as sp:
            design_embedding = self.rag.encoder.embed_design(analysis.circuit)
            hits = self.rag.retrieve_strategies(design_embedding, k=k_strategies)
            pathology_strats = strategies_for_pathologies(analysis.pathologies, limit=2)
            strategy_section = render_strategy_section(
                hits=hits, pathology_strategies=pathology_strats
            )
            manual_hits = self.rag.manual(requirement.text, k=2)
            manual_section = "\n\n".join(h.text for h in manual_hits)
            sections = {
                "USER REQUIREMENT": requirement.text,
                "BASELINE SCRIPT": baseline_script,
                "TOOL REPORT": tool_report,
                "CIRCUIT ANALYSIS": analysis.summary(),
                "RETRIEVED STRATEGIES": strategy_section,
                "MANUAL EXCERPTS": manual_section,
            }
            prompt = build_prompt(sections)
            completion = self.llm.complete(prompt, seed=seed)
            script = extract_script(completion.text) or baseline_script
            strategies_used = [s.name for s in pathology_strats] + [
                h.strategy for h in hits
            ]
            sp.set_attributes(
                strategies=strategies_used,
                fallback=not bool(extract_script(completion.text)),
                script_lines=len(script.splitlines()),
            )
            return DraftResult(
                script=script,
                prompt=prompt,
                completion_text=completion.text,
                strategies_used=strategies_used,
            )
