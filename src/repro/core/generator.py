"""The Generator: drafts a customized synthesis script (paper Fig. 2).

Builds the grounded prompt — user requirement, baseline script, tool
report, CircuitMentor analysis, SynthRAG strategy retrievals and manual
excerpts — and asks the core LLM for a draft script.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..llm.base import LLMClient
from ..llm.prompts import build_prompt, extract_script
from ..mentor.analyzer import DesignAnalysis
from ..rag.knowledge import render_strategy_section, strategies_for_pathologies
from ..rag.synthrag import SynthRAG
from .requirements import Requirement

__all__ = ["DraftResult", "DraftRetrieval", "Generator"]


@dataclass
class DraftResult:
    """One drafted script plus the prompt context that produced it."""

    script: str
    prompt: str
    completion_text: str
    strategies_used: list[str]


@dataclass
class DraftRetrieval:
    """The retrieved grounding for one draft (the pipeline's retrieve stage).

    Splitting retrieval out of :meth:`Generator.draft` lets the serving
    engine coalesce many sessions' strategy/manual lookups into batched
    kNN calls, then finish each draft independently with
    :meth:`Generator.draft_from_retrieval`.
    """

    strategy_hits: list
    manual_hits: list


class Generator:
    """LLM script drafter grounded by analysis + retrieval."""

    def __init__(self, llm: LLMClient, rag: SynthRAG) -> None:
        self.llm = llm
        self.rag = rag

    def draft(
        self,
        requirement: Requirement,
        baseline_script: str,
        tool_report: str,
        analysis: DesignAnalysis,
        seed: int = 0,
        k_strategies: int = 2,
    ) -> DraftResult:
        """Draft a customized script for one design."""
        retrieval = self.retrieve_for_draft(requirement, analysis, k_strategies)
        return self.draft_from_retrieval(
            requirement, baseline_script, tool_report, analysis, retrieval, seed=seed
        )

    def retrieve_for_draft(
        self,
        requirement: Requirement,
        analysis: DesignAnalysis,
        k_strategies: int = 2,
        design_embedding=None,
    ) -> DraftRetrieval:
        """The retrieval half of :meth:`draft` (strategy + manual lookups)."""
        if design_embedding is None:
            design_embedding = self.rag.encoder.embed_design(analysis.circuit)
        return DraftRetrieval(
            strategy_hits=self.rag.retrieve_strategies(design_embedding, k=k_strategies),
            manual_hits=self.rag.manual(requirement.text, k=2),
        )

    def draft_from_retrieval(
        self,
        requirement: Requirement,
        baseline_script: str,
        tool_report: str,
        analysis: DesignAnalysis,
        retrieval: DraftRetrieval,
        seed: int = 0,
    ) -> DraftResult:
        """Compose the prompt and draft from already-retrieved grounding.

        Touches only the LLM — no retriever state — so the serving engine
        can run it per-session after a coalesced retrieve stage.
        """
        with obs.span("chatls.draft", seed=seed) as sp:
            hits = retrieval.strategy_hits
            pathology_strats = strategies_for_pathologies(analysis.pathologies, limit=2)
            strategy_section = render_strategy_section(
                hits=hits, pathology_strategies=pathology_strats
            )
            manual_section = "\n\n".join(h.text for h in retrieval.manual_hits)
            sections = {
                "USER REQUIREMENT": requirement.text,
                "BASELINE SCRIPT": baseline_script,
                "TOOL REPORT": tool_report,
                "CIRCUIT ANALYSIS": analysis.summary(),
                "RETRIEVED STRATEGIES": strategy_section,
                "MANUAL EXCERPTS": manual_section,
            }
            prompt = build_prompt(sections)
            completion = self.llm.complete(prompt, seed=seed)
            script = extract_script(completion.text) or baseline_script
            strategies_used = [s.name for s in pathology_strats] + [
                h.strategy for h in hits
            ]
            sp.set_attributes(
                strategies=strategies_used,
                fallback=not bool(extract_script(completion.text)),
                script_lines=len(script.splitlines()),
            )
            return DraftResult(
                script=script,
                prompt=prompt,
                completion_text=completion.text,
                strategies_used=strategies_used,
            )
