"""ChatLS: the top-level framework (paper Fig. 1/Fig. 2).

``ChatLS.customize`` runs the full pipeline for one design:

1. **CircuitMentor** analyzes the design (graph, GNN embedding, pathology
   detection) at the target clock period.
2. **SynthRAG** is assembled over the expert database, the design's
   property graph and the target library.
3. The **Generator** drafts a customized script from the grounded prompt.
4. **SynthExpert** revises each thought step with per-step retrieval,
   repairing hallucinated commands against the manual (Eq. 6).

``customize_pass_at_k`` evaluates Pass@k (Table III): k seeded drafts,
each run through the synthesis tool; the best executable result wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..designs.database import ExpertDatabase
from ..parallel import (
    SharedRef,
    effective_backend,
    parallel_map,
    release_shared,
    resolve_shared,
    shared,
)
from ..llm.base import LLMClient
from ..llm.baselines import chatls_core
from ..mentor.analyzer import DesignAnalysis, analyze_design
from ..rag.synthrag import SynthRAG
from ..synth.cache import synthesize_cached
from ..synth.library import TechLibrary, nangate45
from ..synth.reports import QoRSnapshot
from .generator import Generator
from .requirements import Requirement, parse_requirement
from .synthexpert import SynthExpert
from .thoughts import CoTTrace

__all__ = ["ChatLS", "CustomizationResult"]


@dataclass
class CustomizationResult:
    """Output of one ChatLS customization."""

    script: str
    analysis: DesignAnalysis
    trace: CoTTrace
    prompt: str
    qor: QoRSnapshot | None = None
    executable: bool = True
    error: str | None = None
    seed: int = 0


class ChatLS:
    """The assembled framework."""

    def __init__(
        self,
        database: ExpertDatabase,
        llm: LLMClient | None = None,
        library: TechLibrary | None = None,
        use_synthexpert: bool = True,
        use_rag: bool = True,
    ) -> None:
        self.database = database
        self.llm = llm or chatls_core()
        self.library = library or nangate45()
        self.use_synthexpert = use_synthexpert
        self.use_rag = use_rag

    # -- single customization -----------------------------------------------------

    def _prepare(
        self,
        verilog: str,
        design_name: str,
        requirement: str | Requirement,
        top: str | None,
        clock_period: float,
    ) -> tuple[Requirement, DesignAnalysis, SynthRAG]:
        """Analysis + retrieval context, shared by every seed of a design."""
        with obs.span(
            "chatls.prepare", design=design_name, clock_period=clock_period
        ) as sp:
            if isinstance(requirement, str):
                requirement = parse_requirement(requirement)
            analysis = analyze_design(
                verilog,
                design_name,
                top=top,
                clock_period=clock_period,
                library=self.library,
            )
            rag = SynthRAG.build(
                self.database,
                circuit=analysis.circuit,
                library=self.library,
                llm=self.llm,
            )
            if self.use_rag:
                rag.embedding_retriever.characteristic = requirement.rerank_characteristic
            sp.set_attribute("pathologies", len(analysis.pathologies))
            return requirement, analysis, rag

    def _draft_and_refine(
        self,
        requirement: Requirement,
        analysis: DesignAnalysis,
        rag: SynthRAG,
        baseline_script: str,
        tool_report: str,
        seed: int,
    ) -> CustomizationResult:
        """One seeded draft + SynthExpert refinement over a shared context.

        Drafting and refinement only *read* the analysis and retrievers,
        so pass@k seeds can share one context across worker threads.
        """
        with obs.span("chatls.sample", seed=seed) as sp:
            generator = Generator(self.llm, rag)
            draft = generator.draft(
                requirement,
                baseline_script,
                tool_report,
                analysis if self.use_rag else _blank_analysis(analysis),
                seed=seed,
            )
            if self.use_synthexpert:
                refined = SynthExpert(self.llm, rag).refine(draft.script, analysis)
                script, trace = refined.script, refined.trace
                sp.set_attributes(
                    steps=len(trace.steps), repaired=trace.num_repaired
                )
            else:
                script, trace = draft.script, CoTTrace()
        return CustomizationResult(
            script=script,
            analysis=analysis,
            trace=trace,
            prompt=draft.prompt,
            seed=seed,
        )

    def customize(
        self,
        verilog: str,
        design_name: str,
        baseline_script: str,
        requirement: str | Requirement,
        tool_report: str = "",
        top: str | None = None,
        clock_period: float = 1.0,
        seed: int = 0,
    ) -> CustomizationResult:
        """Produce one customized synthesis script (no evaluation)."""
        with obs.span(
            "chatls.customize", design=design_name, mode="single", seed=seed
        ):
            requirement, analysis, rag = self._prepare(
                verilog, design_name, requirement, top, clock_period
            )
            return self._draft_and_refine(
                requirement, analysis, rag, baseline_script, tool_report, seed
            )

    # -- evaluated customization -----------------------------------------------------

    def customize_and_evaluate(
        self,
        verilog: str,
        design_name: str,
        baseline_script: str,
        requirement: str,
        tool_report: str = "",
        top: str | None = None,
        clock_period: float = 1.0,
        seed: int = 0,
    ) -> CustomizationResult:
        """Customize, then run the script through the synthesis tool."""
        result = self.customize(
            verilog,
            design_name,
            baseline_script,
            requirement,
            tool_report=tool_report,
            top=top,
            clock_period=clock_period,
            seed=seed,
        )
        run = synthesize_cached(
            self.library, design_name, verilog, result.script, top=top
        )
        result.executable = run.success
        result.error = run.error
        result.qor = run.qor
        return result

    def customize_iteratively(
        self,
        verilog: str,
        design_name: str,
        baseline_script: str,
        requirement: str,
        rounds: int = 3,
        k: int = 3,
        top: str | None = None,
        clock_period: float = 1.0,
    ) -> list[CustomizationResult]:
        """Multi-iteration customization (paper §V-B: "logic synthesis is
        inherently an iterative process, not a one-time execution").

        Each round takes the previous round's best script as the new
        baseline and feeds the fresh tool report back into the prompt, so
        later rounds address the *residual* violations.  Stops early when
        timing closes.  Returns one best result per executed round.
        """
        from ..synth.reports import render_qor_report

        history: list[CustomizationResult] = []
        script = baseline_script
        report = ""
        with obs.span(
            "chatls.customize_iteratively", design=design_name, rounds=rounds, k=k
        ) as root:
            for round_index in range(rounds):
                with obs.span("chatls.round", index=round_index) as sp:
                    if round_index == 0:
                        result = self.customize_pass_at_k(
                            verilog,
                            design_name,
                            script,
                            requirement,
                            k=k,
                            tool_report=report,
                            top=top,
                            clock_period=clock_period,
                        )
                    else:
                        # Resynthesis round: extend the previous script with the
                        # incremental refinement commands for the residual
                        # violations, then re-run the tool.
                        extended = _extend_script(script)
                        run = synthesize_cached(
                            self.library, design_name, verilog, extended, top=top
                        )
                        result = CustomizationResult(
                            script=extended,
                            analysis=history[0].analysis,
                            trace=CoTTrace(),
                            prompt="",
                            qor=run.qor,
                            executable=run.success,
                            error=run.error,
                        )
                    if result.qor is not None:
                        sp.set_attributes(
                            wns=round(result.qor.wns, 4), area=round(result.qor.area, 2)
                        )
                history.append(result)
                if result.qor is None:
                    break
                # Keep the round only if it did not regress; otherwise carry
                # the previous best script forward.
                if len(history) >= 2 and history[-2].qor is not None:
                    if not _better_timing(result.qor, history[-2].qor):
                        result = history[-2]
                script = result.script
                report = render_qor_report(result.qor)
                if result.qor.wns >= 0:
                    break
            root.set_attribute("executed_rounds", len(history))
        return history

    def customize_pass_at_k(
        self,
        verilog: str,
        design_name: str,
        baseline_script: str,
        requirement: str,
        k: int = 5,
        tool_report: str = "",
        top: str | None = None,
        clock_period: float = 1.0,
        jobs: int | None = None,
    ) -> CustomizationResult:
        """Pass@k: best executable result over k seeded samples (Table III).

        The design analysis and retrieval context are built once and
        shared; only the seeded draft/refine/synthesize work fans out
        through the parallel executor.  The winner is picked in seed
        order, matching the serial sweep exactly.
        """
        with obs.span(
            "chatls.customize", design=design_name, mode="pass_at_k", k=k
        ) as root:
            prepared, analysis, rag = self._prepare(
                verilog, design_name, requirement, top, clock_period
            )
            # The per-seed context (pipeline + analysis + retrieval) is
            # identical across samples: broadcast it once so the process
            # backend ships a ref per seed instead of megabytes each.
            ctx_ref = shared(
                (self, prepared, analysis, rag, verilog, design_name,
                 baseline_script, tool_report, top),
                backend=effective_backend(jobs=jobs, items=k),
            )
            cost = len(verilog)
            try:
                results = parallel_map(
                    _pass_at_k_sample,
                    [(ctx_ref, seed) for seed in range(k)],
                    jobs=jobs,
                    label="pass-at-k",
                    cost=lambda task: cost,
                )
            finally:
                release_shared(ctx_ref)
            best: CustomizationResult | None = None
            for result in results:
                if not result.executable or result.qor is None:
                    if best is None:
                        best = result
                    continue
                if best is None or best.qor is None:
                    best = result
                elif _better_timing(result.qor, best.qor):
                    best = result
            assert best is not None
            root.set_attributes(winner_seed=best.seed, executable=best.executable)
            obs.info(
                "chatls.pass_at_k.done",
                design=design_name,
                k=k,
                winner_seed=best.seed,
                executable=best.executable,
            )
            return best


def _pass_at_k_sample(task: tuple[SharedRef, int]) -> CustomizationResult:
    """One seeded pass@k sample (module-level so it crosses processes).

    The shared ref carries the full per-design context built once by
    :meth:`ChatLS.customize_pass_at_k`; only the seed varies per task.
    """
    ctx_ref, seed = task
    (chatls, prepared, analysis, rag, verilog, design_name,
     baseline_script, tool_report, top) = resolve_shared(ctx_ref)
    result = chatls._draft_and_refine(
        prepared, analysis, rag, baseline_script, tool_report, seed
    )
    run = synthesize_cached(
        chatls.library, design_name, verilog, result.script, top=top
    )
    result.executable = run.success
    result.error = run.error
    result.qor = run.qor
    return result


def _extend_script(script: str) -> str:
    """Append one round of incremental refinement to a synthesis script.

    Report lines stay at the end; the refinement block (register retiming,
    buffer balancing, incremental compile) goes after the last compile-
    class command.
    """
    lines = [l for l in script.splitlines() if l.strip()]
    reports = [l for l in lines if l.split()[0].startswith("report")]
    body = [l for l in lines if not l.split()[0].startswith("report")]
    body += ["optimize_registers", "balance_buffer", "compile -incremental"]
    return "\n".join(body + reports)


def _better_timing(a: QoRSnapshot, b: QoRSnapshot) -> bool:
    """Timing-first comparison (the paper's evaluation objective).

    Negative slack is eliminated first (WNS, then TNS); once timing is
    closed, remaining positive slack is traded for area (paper §V-B:
    timing closure "can be traded for improvements in area and power").
    """
    if round(a.wns, 4) != round(b.wns, 4):
        return a.wns > b.wns
    if round(a.tns, 4) != round(b.tns, 4):
        return a.tns > b.tns
    if a.wns >= 0 and round(a.area, 2) != round(b.area, 2):
        return a.area < b.area
    if round(a.cps, 4) != round(b.cps, 4):
        return a.cps > b.cps
    return a.area < b.area


def _blank_analysis(analysis: DesignAnalysis) -> DesignAnalysis:
    """Ablation helper: strip pathologies so prompts carry no analysis."""
    import copy

    blank = copy.copy(analysis)
    blank.pathologies = []
    return blank
