"""SynthExpert: iterative script refinement with CoT + RAG (paper §IV-C).

The drafted script is decomposed into thought steps (one per command).
For each step T_i, a query Q_i is formulated (by the LLM), information
R_i is retrieved through SynthRAG, and the step is revised to T_i*
(Eq. 6).  Revision enforces the paper's executability property: commands
the manual does not document (hallucinations) are repaired to the closest
documented command with equivalent intent, or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..llm.base import LLMClient
from ..llm.prompts import build_prompt
from ..mentor.analyzer import DesignAnalysis
from ..rag.synthrag import SynthRAG
from .thoughts import CoTTrace, ThoughtStep

__all__ = ["SynthExpert", "RefinementResult", "StepPlan", "DEFAULT_PROTECTED_PREFIXES"]

#: Setup/constraint commands that pass through revision untouched.
DEFAULT_PROTECTED_PREFIXES = (
    "read_verilog",
    "current_design",
    "link",
    "set_wire_load_model",
    "create_clock",
    "set",  # generic Tcl variable assignment
)

#: Intent keywords -> documented replacement command, used to repair
#: hallucinated commands while preserving what the model meant.
_REPAIR_INTENTS = (
    (("retime", "register", "pipeline"), "optimize_registers"),
    (("fanout", "buffer", "net"), "balance_buffer"),
    (("area", "downsize", "cost"), "set_max_area 0"),
    (("timing", "critical", "delay", "speed"), "compile_ultra"),
    (("flatten", "ungroup", "hierarchy"), "ungroup -all -flatten"),
)

#: Options the substrate actually accepts, per command.
_VALID_OPTION_PREFIXES = {
    "compile": ("-map_effort", "-area_effort", "-power_effort", "-incremental"),
    "compile_ultra": ("-retime", "-no_autoungroup", "-timing_high_effort_script"),
    "balance_buffer": ("-max_fanout",),
    "ungroup": ("-all", "-flatten"),
    "set_wire_load_model": ("-name",),
    "create_clock": ("-period", "-name"),
    "report_timing": (),
    "report_qor": (),
}


@dataclass
class RefinementResult:
    """The refined script plus the CoT trace."""

    script: str
    trace: CoTTrace

    @property
    def executable_intent(self) -> bool:
        """True when every surviving command is manual-documented."""
        return all(step.action != "failed" for step in self.trace.steps)


@dataclass
class StepPlan:
    """The decomposed draft: thought steps plus their retrieval queries.

    Produced by :meth:`SynthExpert.plan`; the per-step manual retrieval
    can then run as one batched lookup (within a session, or coalesced
    across sessions by the serving engine) before
    :meth:`SynthExpert.apply` revises each step.
    """

    steps: list[ThoughtStep]
    protected: list[bool]

    def queries(self) -> list[str]:
        """Effective retrieval query per unprotected step, in step order."""
        return [
            step.query or step.content
            for step, is_protected in zip(self.steps, self.protected)
            if not is_protected
        ]


class SynthExpert:
    """CoT + RAG refinement loop over a drafted script."""

    def __init__(self, llm: LLMClient, rag: SynthRAG) -> None:
        self.llm = llm
        self.rag = rag

    def refine(
        self,
        draft_script: str,
        analysis: DesignAnalysis | None = None,
        protected_prefixes: tuple[str, ...] = DEFAULT_PROTECTED_PREFIXES,
    ) -> RefinementResult:
        """Revise the draft one thought step at a time (paper Eq. 6).

        Runs the three pipeline sub-stages back to back: ``plan`` (steps +
        LLM-formulated queries), batched manual ``retrieve``, ``apply``
        (the Eq. 6 revision decisions).
        """
        with obs.span("expert.refine") as sp:
            plan = self.plan(draft_script, protected_prefixes)
            step_hits = self.retrieve(plan)
            result = self.apply(plan, step_hits, analysis)
            sp.set_attributes(
                steps=len(result.trace.steps),
                repaired=result.trace.num_repaired,
                dropped=result.trace.num_dropped,
            )
            return result

    # -- pipeline sub-stages -----------------------------------------------------

    def plan(
        self,
        draft_script: str,
        protected_prefixes: tuple[str, ...] = DEFAULT_PROTECTED_PREFIXES,
    ) -> StepPlan:
        """Decompose the draft into thought steps and formulate queries (Q_i)."""
        steps: list[ThoughtStep] = []
        protected: list[bool] = []
        for index, raw_line in enumerate(draft_script.splitlines()):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            step = ThoughtStep(index=index, content=line)
            first = line.split()[0]
            is_protected = any(
                first == prefix or (prefix == "set" and first == "set")
                for prefix in protected_prefixes
            )
            if not is_protected:
                # Q_i: ask the LLM to turn the step into a retrieval query.
                step.query = self.llm.complete(
                    build_prompt({"TASK": "FORMULATE QUERY", "THOUGHT STEP": line})
                ).text.strip()
            steps.append(step)
            protected.append(is_protected)
        return StepPlan(steps=steps, protected=protected)

    def retrieve(self, plan: StepPlan, k: int = 2) -> list:
        """R_i: manual retrieval for every unprotected step's query, batched."""
        queries = plan.queries()
        if not queries:
            return []
        if len(queries) == 1:
            return [self.rag.manual(queries[0], k=k)]
        return self.rag.manual_batch(queries, k=k)

    def apply(
        self,
        plan: StepPlan,
        step_hits: list,
        analysis: DesignAnalysis | None = None,
    ) -> RefinementResult:
        """T_i -> T_i*: revise each step given its retrieved grounding."""
        trace = CoTTrace()
        final_lines: list[str] = []
        hit_rows = iter(step_hits)
        for step, is_protected in zip(plan.steps, plan.protected):
            if is_protected:
                # Setup/constraint lines pass through unrevised — the paper
                # fixes basic configuration (incl. clock period).
                step.revised = step.content
                trace.add(step)
                final_lines.append(step.content)
                continue
            revised = self._revise_step(step, next(hit_rows), analysis)
            trace.add(step)
            if step.action != "dropped" and revised:
                final_lines.append(revised)
        if not any(l.split()[0].startswith("compile") for l in final_lines):
            # A synthesis script must compile something; restore a default.
            final_lines.append("compile")
            trace.add(
                ThoughtStep(
                    index=len(trace.steps),
                    content="(ensure a compile command exists)",
                    revised="compile",
                    action="repaired",
                )
            )
        return RefinementResult(script="\n".join(final_lines), trace=trace)

    # -- the Eq. 6 inner loop ----------------------------------------------------

    def _revise_step(
        self, step: ThoughtStep, hits, analysis: DesignAnalysis | None
    ) -> str:
        line = step.content
        command = line.split()[0]
        with obs.span("expert.step", index=step.index, command=command) as sp:
            sp.set_attribute("query", step.query)
            step.retrieved = "\n".join(h.text for h in hits)

            if self.rag.command_exists(command):
                repaired = self._sanitize_options(line)
                if repaired != line:
                    step.action = "repaired"
                    obs.info(
                        "expert.step.repaired",
                        index=step.index,
                        reason="undocumented options dropped",
                        before=line,
                        after=repaired,
                    )
                step.revised = repaired
                sp.set_attributes(action=step.action, repaired=step.action == "repaired")
                return repaired
            # Hallucinated command: repair from intent, grounded in retrieval.
            replacement = self._repair_from_intent(line, hits)
            if replacement is not None:
                step.action = "repaired"
                step.revised = replacement
                sp.set_attributes(action="repaired", repaired=True)
                obs.info(
                    "expert.step.repaired",
                    index=step.index,
                    reason="hallucinated command replaced from intent",
                    before=line,
                    after=replacement,
                )
                return replacement
            step.action = "dropped"
            step.revised = ""
            sp.set_attributes(action="dropped", repaired=False)
            obs.info(
                "expert.step.dropped",
                index=step.index,
                reason="command not in manual, no intent match",
                before=line,
            )
            return ""

    @staticmethod
    def _repair_from_intent(line: str, hits) -> str | None:
        lowered = line.lower()
        for keywords, replacement in _REPAIR_INTENTS:
            if any(word in lowered for word in keywords):
                return replacement
        # Fall back to the top retrieved documented synthesis command.
        safe = {"compile", "compile_ultra", "optimize_registers", "balance_buffer"}
        for hit in hits:
            if hit.command in safe:
                return hit.command
        return None

    @staticmethod
    def _sanitize_options(line: str) -> str:
        """Drop options the documented command does not accept."""
        parts = line.split()
        command = parts[0]
        if command not in _VALID_OPTION_PREFIXES:
            return line
        valid = _VALID_OPTION_PREFIXES[command]
        value_flags = {"-map_effort", "-area_effort", "-power_effort",
                       "-max_fanout", "-name", "-period"}
        kept = [command]
        i = 1
        while i < len(parts):
            token = parts[i]
            if token.startswith("-"):
                if any(token.startswith(prefix) for prefix in valid):
                    kept.append(token)
                    if token in value_flags and i + 1 < len(parts):
                        kept.append(parts[i + 1])
                        i += 1
                else:
                    # Drop the undocumented flag and its value, if any.
                    if i + 1 < len(parts) and not parts[i + 1].startswith("-"):
                        i += 1
            else:
                kept.append(token)
            i += 1
        return " ".join(kept)
