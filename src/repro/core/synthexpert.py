"""SynthExpert: iterative script refinement with CoT + RAG (paper §IV-C).

The drafted script is decomposed into thought steps (one per command).
For each step T_i, a query Q_i is formulated (by the LLM), information
R_i is retrieved through SynthRAG, and the step is revised to T_i*
(Eq. 6).  Revision enforces the paper's executability property: commands
the manual does not document (hallucinations) are repaired to the closest
documented command with equivalent intent, or dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..llm.base import LLMClient
from ..llm.prompts import build_prompt
from ..mentor.analyzer import DesignAnalysis
from ..rag.synthrag import SynthRAG
from .thoughts import CoTTrace, ThoughtStep

__all__ = ["SynthExpert", "RefinementResult"]

#: Intent keywords -> documented replacement command, used to repair
#: hallucinated commands while preserving what the model meant.
_REPAIR_INTENTS = (
    (("retime", "register", "pipeline"), "optimize_registers"),
    (("fanout", "buffer", "net"), "balance_buffer"),
    (("area", "downsize", "cost"), "set_max_area 0"),
    (("timing", "critical", "delay", "speed"), "compile_ultra"),
    (("flatten", "ungroup", "hierarchy"), "ungroup -all -flatten"),
)

#: Options the substrate actually accepts, per command.
_VALID_OPTION_PREFIXES = {
    "compile": ("-map_effort", "-area_effort", "-power_effort", "-incremental"),
    "compile_ultra": ("-retime", "-no_autoungroup", "-timing_high_effort_script"),
    "balance_buffer": ("-max_fanout",),
    "ungroup": ("-all", "-flatten"),
    "set_wire_load_model": ("-name",),
    "create_clock": ("-period", "-name"),
    "report_timing": (),
    "report_qor": (),
}


@dataclass
class RefinementResult:
    """The refined script plus the CoT trace."""

    script: str
    trace: CoTTrace

    @property
    def executable_intent(self) -> bool:
        """True when every surviving command is manual-documented."""
        return all(step.action != "failed" for step in self.trace.steps)


class SynthExpert:
    """CoT + RAG refinement loop over a drafted script."""

    def __init__(self, llm: LLMClient, rag: SynthRAG) -> None:
        self.llm = llm
        self.rag = rag

    def refine(
        self,
        draft_script: str,
        analysis: DesignAnalysis | None = None,
        protected_prefixes: tuple[str, ...] = (
            "read_verilog",
            "current_design",
            "link",
            "set_wire_load_model",
            "create_clock",
            "set",  # generic Tcl variable assignment
        ),
    ) -> RefinementResult:
        """Revise the draft one thought step at a time (paper Eq. 6)."""
        with obs.span("expert.refine") as sp:
            result = self._refine(draft_script, analysis, protected_prefixes)
            sp.set_attributes(
                steps=len(result.trace.steps),
                repaired=result.trace.num_repaired,
                dropped=result.trace.num_dropped,
            )
            return result

    def _refine(
        self,
        draft_script: str,
        analysis: DesignAnalysis | None,
        protected_prefixes: tuple[str, ...],
    ) -> RefinementResult:
        trace = CoTTrace()
        final_lines: list[str] = []
        for index, raw_line in enumerate(draft_script.splitlines()):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            step = ThoughtStep(index=index, content=line)
            first = line.split()[0]
            if any(
                first == prefix or (prefix == "set" and first == "set")
                for prefix in protected_prefixes
            ):
                # Setup/constraint lines pass through unrevised — the paper
                # fixes basic configuration (incl. clock period).
                step.revised = line
                trace.add(step)
                final_lines.append(line)
                continue
            revised = self._revise_step(step, analysis)
            trace.add(step)
            if step.action != "dropped" and revised:
                final_lines.append(revised)
        if not any(l.split()[0].startswith("compile") for l in final_lines):
            # A synthesis script must compile something; restore a default.
            final_lines.append("compile")
            trace.add(
                ThoughtStep(
                    index=len(trace.steps),
                    content="(ensure a compile command exists)",
                    revised="compile",
                    action="repaired",
                )
            )
        return RefinementResult(script="\n".join(final_lines), trace=trace)

    # -- the Eq. 6 inner loop ----------------------------------------------------

    def _revise_step(self, step: ThoughtStep, analysis: DesignAnalysis | None) -> str:
        line = step.content
        command = line.split()[0]
        with obs.span("expert.step", index=step.index, command=command) as sp:
            # Q_i: ask the LLM to turn the step into a retrieval query.
            step.query = self.llm.complete(
                build_prompt({"TASK": "FORMULATE QUERY", "THOUGHT STEP": line})
            ).text.strip()
            sp.set_attribute("query", step.query)
            # R_i: manual retrieval for the step's query.
            hits = self.rag.manual(step.query or line, k=2)
            step.retrieved = "\n".join(h.text for h in hits)

            if self.rag.command_exists(command):
                repaired = self._sanitize_options(line)
                if repaired != line:
                    step.action = "repaired"
                    obs.info(
                        "expert.step.repaired",
                        index=step.index,
                        reason="undocumented options dropped",
                        before=line,
                        after=repaired,
                    )
                step.revised = repaired
                sp.set_attributes(action=step.action, repaired=step.action == "repaired")
                return repaired
            # Hallucinated command: repair from intent, grounded in retrieval.
            replacement = self._repair_from_intent(line, hits)
            if replacement is not None:
                step.action = "repaired"
                step.revised = replacement
                sp.set_attributes(action="repaired", repaired=True)
                obs.info(
                    "expert.step.repaired",
                    index=step.index,
                    reason="hallucinated command replaced from intent",
                    before=line,
                    after=replacement,
                )
                return replacement
            step.action = "dropped"
            step.revised = ""
            sp.set_attributes(action="dropped", repaired=False)
            obs.info(
                "expert.step.dropped",
                index=step.index,
                reason="command not in manual, no intent match",
                before=line,
            )
            return ""

    @staticmethod
    def _repair_from_intent(line: str, hits) -> str | None:
        lowered = line.lower()
        for keywords, replacement in _REPAIR_INTENTS:
            if any(word in lowered for word in keywords):
                return replacement
        # Fall back to the top retrieved documented synthesis command.
        safe = {"compile", "compile_ultra", "optimize_registers", "balance_buffer"}
        for hit in hits:
            if hit.command in safe:
                return hit.command
        return None

    @staticmethod
    def _sanitize_options(line: str) -> str:
        """Drop options the documented command does not accept."""
        parts = line.split()
        command = parts[0]
        if command not in _VALID_OPTION_PREFIXES:
            return line
        valid = _VALID_OPTION_PREFIXES[command]
        value_flags = {"-map_effort", "-area_effort", "-power_effort",
                       "-max_fanout", "-name", "-period"}
        kept = [command]
        i = 1
        while i < len(parts):
            token = parts[i]
            if token.startswith("-"):
                if any(token.startswith(prefix) for prefix in valid):
                    kept.append(token)
                    if token in value_flags and i + 1 < len(parts):
                        kept.append(parts[i + 1])
                        i += 1
                else:
                    # Drop the undocumented flag and its value, if any.
                    if i + 1 < len(parts) and not parts[i + 1].startswith("-"):
                        i += 1
            else:
                kept.append(token)
            i += 1
        return " ".join(kept)
