"""ChatLS core: requirement parsing, Generator, SynthExpert, the facade.

This package is the paper's primary contribution: the orchestration that
couples CircuitMentor (analysis), SynthRAG (retrieval) and the LLM into a
grounded, self-correcting synthesis-script customizer.
"""

from .baseline_runner import BaselineRun, BaselineRunner
from .chatls import ChatLS, CustomizationResult
from .generator import DraftResult, Generator
from .requirements import Requirement, parse_requirement
from .synthexpert import RefinementResult, SynthExpert
from .thoughts import CoTTrace, ThoughtStep

__all__ = [
    "BaselineRun",
    "BaselineRunner",
    "ChatLS",
    "CustomizationResult",
    "DraftResult",
    "Generator",
    "Requirement",
    "parse_requirement",
    "RefinementResult",
    "SynthExpert",
    "CoTTrace",
    "ThoughtStep",
]
