"""Thought-step containers for SynthExpert's CoT trace (paper Eq. 6)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ThoughtStep", "CoTTrace"]


@dataclass
class ThoughtStep:
    """One reasoning step T_i and its RAG-revised form T_i*."""

    index: int
    content: str  # the draft thought (usually one script command + intent)
    query: str = ""  # Q_i formulated from the step
    retrieved: str = ""  # R_i
    revised: str = ""  # T_i*
    action: str = "kept"  # kept | repaired | dropped

    @property
    def final(self) -> str:
        return self.revised or self.content


@dataclass
class CoTTrace:
    """The full chain of revised thoughts for one customization run."""

    steps: list[ThoughtStep] = field(default_factory=list)

    def add(self, step: ThoughtStep) -> None:
        self.steps.append(step)

    @property
    def num_repaired(self) -> int:
        return sum(1 for s in self.steps if s.action == "repaired")

    @property
    def num_dropped(self) -> int:
        return sum(1 for s in self.steps if s.action == "dropped")

    def render(self) -> str:
        lines = []
        for step in self.steps:
            lines.append(f"T{step.index}: {step.content}")
            if step.query:
                lines.append(f"  Q{step.index}: {step.query}")
            if step.action != "kept":
                lines.append(f"  -> {step.action}: {step.final}")
        return "\n".join(lines)
