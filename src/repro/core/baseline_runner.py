"""Raw-LLM baseline runner (the GPT-4o / Claude 3.5 arms of Table III).

Baselines receive exactly what the paper gave them: the user requirement,
the baseline script, the tool report, and the design RTL (segmented to the
model's context window) — no CircuitMentor, no SynthRAG, no SynthExpert.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel import parallel_map
from ..llm.base import LLMClient
from ..llm.prompts import build_prompt, extract_script
from ..synth.cache import synthesize_cached
from ..synth.library import TechLibrary, nangate45
from ..synth.reports import QoRSnapshot

__all__ = ["BaselineRun", "BaselineRunner"]


@dataclass
class BaselineRun:
    """One evaluated baseline customization."""

    script: str
    executable: bool
    error: str | None
    qor: QoRSnapshot | None
    seed: int


class BaselineRunner:
    """Runs a raw LLM against the customization task."""

    def __init__(self, llm: LLMClient, library: TechLibrary | None = None) -> None:
        self.llm = llm
        self.library = library or nangate45()

    def build_prompt(
        self, requirement: str, baseline_script: str, tool_report: str, verilog: str
    ) -> str:
        return build_prompt(
            {
                "USER REQUIREMENT": requirement,
                "BASELINE SCRIPT": baseline_script,
                "TOOL REPORT": tool_report,
                "DESIGN RTL": verilog,
            }
        )

    def run_once(
        self,
        verilog: str,
        design_name: str,
        baseline_script: str,
        requirement: str,
        tool_report: str = "",
        top: str | None = None,
        seed: int = 0,
    ) -> BaselineRun:
        prompt = self.build_prompt(requirement, baseline_script, tool_report, verilog)
        completion = self.llm.complete(prompt, seed=seed)
        script = extract_script(completion.text) or baseline_script
        # Seeds frequently draft identical scripts; the content-addressed
        # cache makes the duplicates free.
        result = synthesize_cached(
            self.library, design_name, verilog, script, top=top
        )
        return BaselineRun(
            script=script,
            executable=result.success,
            error=result.error,
            qor=result.qor,
            seed=seed,
        )

    def run_pass_at_k(
        self,
        verilog: str,
        design_name: str,
        baseline_script: str,
        requirement: str,
        k: int = 5,
        tool_report: str = "",
        top: str | None = None,
        jobs: int | None = None,
    ) -> BaselineRun:
        """Best executable run over k seeds (Table III's Pass@5).

        Seeds are independent and run through the parallel executor; the
        winner is selected in seed order, so the result is identical to a
        serial sweep.
        """
        from .chatls import _better_timing

        runs = parallel_map(
            lambda seed: self.run_once(
                verilog,
                design_name,
                baseline_script,
                requirement,
                tool_report=tool_report,
                top=top,
                seed=seed,
            ),
            range(k),
            jobs=jobs,
            label="pass-at-k",
        )
        best: BaselineRun | None = None
        for run in runs:
            if not run.executable or run.qor is None:
                if best is None:
                    best = run
                continue
            if best is None or best.qor is None or _better_timing(run.qor, best.qor):
                best = run
        assert best is not None
        return best
