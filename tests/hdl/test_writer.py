"""Tests for the structural Verilog writer: write -> reparse -> equivalence."""

import numpy as np
import pytest

from repro.hdl import elaborate
from repro.hdl.sim import Simulator
from repro.hdl.writer import write_verilog
from repro.synth import DCShell, nangate45
from repro.synth.techmap import map_to_library

SRC = """
module dut(input clk, input [7:0] a, b, output reg [7:0] y, output any_a);
  reg [7:0] t;
  assign any_a = |a;
  always @(posedge clk) begin
    t <= a + b;
    y <= t ^ 8'h3C;
  end
endmodule
"""


@pytest.fixture
def mapped_netlist():
    nl = elaborate(SRC, "dut")
    map_to_library(nl, nangate45())
    return nl


class TestWriterOutput:
    def test_contains_primitives_and_module(self, mapped_netlist):
        text = write_verilog(mapped_netlist)
        assert "module dut(" in text
        assert "module DFF_X1(" in text
        assert "always @(posedge ck)" in text

    def test_sanitizes_internal_names(self, mapped_netlist):
        text = write_verilog(mapped_netlist)
        assert "$" not in text
        assert "[" not in text.replace("8'h", "")  # no unparsed selects

    def test_round_trip_simulation_equivalence(self, mapped_netlist):
        """write -> parse -> elaborate must preserve cycle behaviour."""
        text = write_verilog(mapped_netlist)
        reparsed = elaborate(text, "dut")
        reparsed.validate()

        rng = np.random.default_rng(3)
        stim = [(int(rng.integers(256)), int(rng.integers(256))) for _ in range(6)]

        def run(netlist, a_bits, b_bits):
            sim = Simulator(netlist)
            out = []
            for a, b in stim:
                for i in range(8):
                    sim.set_input(a_bits[i], (a >> i) & 1)
                    sim.set_input(b_bits[i], (b >> i) & 1)
                sim.step()
                out.append(
                    tuple(sim.values[n] for n in netlist.primary_outputs)
                )
            return out

        golden_a = [f"a[{i}]" for i in range(8)]
        golden_b = [f"b[{i}]" for i in range(8)]
        rt_a = [f"a_{i}_" for i in range(8)]
        rt_b = [f"b_{i}_" for i in range(8)]
        golden = run(mapped_netlist, golden_a, golden_b)
        round_trip = run(reparsed, rt_a, rt_b)
        assert golden == round_trip

    def test_write_command_in_shell(self):
        shell = DCShell()
        shell.add_design("dut", SRC)
        result = shell.run_script(
            "read_verilog dut\ncreate_clock -period 2.0 clk\ncompile\n"
            "write -format verilog -output out.v"
        )
        assert result.success
        assert shell.last_written is not None
        assert "module dut(" in shell.last_written

    def test_write_unsupported_format_fails(self):
        shell = DCShell()
        shell.add_design("dut", SRC)
        result = shell.run_script(
            "read_verilog dut\ncompile\nwrite -format ddc"
        )
        assert not result.success

    def test_unmapped_netlist_uses_generic_primitives(self):
        nl = elaborate(SRC, "dut")
        text = write_verilog(nl)
        assert "GEN_" in text
