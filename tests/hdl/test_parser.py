"""Unit tests for the Verilog parser."""

import pytest

from repro.hdl.ast_nodes import (
    BinaryOp,
    CaseStatement,
    Concat,
    Identifier,
    IfStatement,
    Number,
    RangeSelect,
    TernaryOp,
    UnaryOp,
)
from repro.hdl.parser import ParseError, parse_number, parse_source


class TestNumberParsing:
    def test_unsized_decimal(self):
        n = parse_number("42")
        assert n.value == 42
        assert n.width is None

    def test_sized_hex(self):
        n = parse_number("8'hFF")
        assert n.value == 255
        assert n.width == 8

    def test_sized_binary(self):
        assert parse_number("4'b1010").value == 10

    def test_signed_marker(self):
        assert parse_number("8'sd5").value == 5

    def test_x_bits_treated_as_zero(self):
        assert parse_number("4'b1x0z").value == 8

    def test_underscores_ignored(self):
        assert parse_number("32'hDEAD_BEEF").value == 0xDEADBEEF


class TestModuleHeader:
    def test_ansi_ports(self):
        sf = parse_source("module m(input a, output reg [7:0] q); endmodule")
        mod = sf.modules[0]
        assert [p.name for p in mod.ports] == ["a", "q"]
        assert mod.ports[1].is_reg
        assert mod.ports[1].direction == "output"

    def test_shared_direction_port_group(self):
        sf = parse_source("module m(input [3:0] a, b, output y); endmodule")
        mod = sf.modules[0]
        assert [p.direction for p in mod.ports] == ["input", "input", "output"]
        assert mod.ports[1].range is not None

    def test_non_ansi_ports_resolved_in_body(self):
        src = """
        module m(a, y);
          input [1:0] a;
          output y;
        endmodule
        """
        mod = parse_source(src).modules[0]
        assert mod.port("a").direction == "input"
        assert mod.port("y").direction == "output"

    def test_parameter_list(self):
        sf = parse_source("module m #(parameter W = 8, D = 4)(); endmodule")
        mod = sf.modules[0]
        assert [p.name for p in mod.params] == ["W", "D"]

    def test_module_source_text_captured(self):
        src = "module m();\nendmodule"
        mod = parse_source(src).modules[0]
        assert "module m" in mod.source_text
        assert "endmodule" in mod.source_text


class TestDeclarationsAndAssigns:
    def test_wire_with_implicit_assign(self):
        mod = parse_source("module m(); wire w = 1'b1; endmodule").modules[0]
        assert len(mod.assigns) == 1
        assert mod.nets[0].name == "w"

    def test_memory_declaration(self):
        mod = parse_source("module m(); reg [7:0] mem [0:255]; endmodule").modules[0]
        assert mod.nets[0].array_range is not None

    def test_localparam(self):
        mod = parse_source("module m(); localparam N = 3; endmodule").modules[0]
        assert mod.params[0].local

    def test_continuous_assign_target_select(self):
        mod = parse_source("module m(output [7:0] y, input a); assign y[3:0] = {4{a}}; endmodule").modules[0]
        assert isinstance(mod.assigns[0].target, RangeSelect)


class TestExpressions:
    def expr(self, text):
        mod = parse_source(f"module m(); assign x = {text}; endmodule").modules[0]
        return mod.assigns[0].value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert isinstance(e, BinaryOp)
        assert e.op == "+"
        assert isinstance(e.right, BinaryOp)
        assert e.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        e = self.expr("a << 1 < b")
        assert e.op == "<"

    def test_ternary(self):
        e = self.expr("s ? a : b")
        assert isinstance(e, TernaryOp)

    def test_nested_ternary_right_assoc(self):
        e = self.expr("s ? a : t ? b : c")
        assert isinstance(e.if_false, TernaryOp)

    def test_concat_and_replication(self):
        e = self.expr("{a, 2'b01}")
        assert isinstance(e, Concat)
        rep = self.expr("{4{a}}")
        assert rep.count.value == 4

    def test_unary_reduction(self):
        e = self.expr("^data")
        assert isinstance(e, UnaryOp)
        assert e.op == "^"

    def test_indexed_part_select_desugars(self):
        e = self.expr("bus[base +: 4]")
        assert isinstance(e, RangeSelect)

    def test_bit_and_range_select(self):
        e = self.expr("v[3]")
        assert e.index.value == 3
        e2 = self.expr("v[7:4]")
        assert isinstance(e2, RangeSelect)

    def test_parenthesised_grouping(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"


class TestAlwaysBlocks:
    def test_sequential_event(self):
        src = "module m(input c); reg q; always @(posedge c) q <= 1'b1; endmodule"
        blk = parse_source(src).modules[0].always_blocks[0]
        assert blk.event.is_sequential
        assert blk.event.clock == "c"

    def test_star_sensitivity(self):
        src = "module m(input a); reg y; always @(*) y = a; endmodule"
        blk = parse_source(src).modules[0].always_blocks[0]
        assert blk.event.is_star
        assert not blk.event.is_sequential

    def test_multi_edge_sensitivity(self):
        src = "module m(input c, r); reg q; always @(posedge c or negedge r) q <= 1'b0; endmodule"
        blk = parse_source(src).modules[0].always_blocks[0]
        assert blk.event.clock == "c"
        assert len(blk.event.edges) == 2

    def test_if_else_chain(self):
        src = """
        module m(input c, a, b); reg q;
        always @(posedge c)
          if (a) q <= 1'b0;
          else if (b) q <= 1'b1;
          else q <= q;
        endmodule
        """
        blk = parse_source(src).modules[0].always_blocks[0]
        stmt = blk.body[0]
        assert isinstance(stmt, IfStatement)
        assert isinstance(stmt.else_body[0], IfStatement)

    def test_case_with_default(self):
        src = """
        module m(input [1:0] s); reg y;
        always @(*) case (s)
          2'd0: y = 1'b0;
          2'd1, 2'd2: y = 1'b1;
          default: y = 1'b0;
        endcase
        endmodule
        """
        stmt = parse_source(src).modules[0].always_blocks[0].body[0]
        assert isinstance(stmt, CaseStatement)
        assert len(stmt.items) == 3
        assert stmt.items[1].labels and len(stmt.items[1].labels) == 2
        assert stmt.items[2].labels == []

    def test_named_begin_block(self):
        src = "module m(input c); reg q; always @(posedge c) begin : blk q <= 1'b1; end endmodule"
        blk = parse_source(src).modules[0].always_blocks[0]
        assert len(blk.body) == 1


class TestInstances:
    def test_named_connections(self):
        src = "module m(); sub u1 (.a(x), .b(y[3:0])); endmodule"
        inst = parse_source(src).modules[0].instances[0]
        assert inst.module_name == "sub"
        assert [c.port for c in inst.connections] == ["a", "b"]

    def test_positional_connections(self):
        src = "module m(); sub u1 (x, y); endmodule"
        inst = parse_source(src).modules[0].instances[0]
        assert all(c.port is None for c in inst.connections)

    def test_parameter_overrides(self):
        src = "module m(); sub #(.W(16)) u1 (.a(x)); endmodule"
        inst = parse_source(src).modules[0].instances[0]
        assert inst.param_overrides[0][0] == "W"

    def test_unconnected_port(self):
        src = "module m(); sub u1 (.a(x), .b()); endmodule"
        inst = parse_source(src).modules[0].instances[0]
        assert inst.connections[1].expr is None

    def test_multiple_instances_one_statement(self):
        src = "module m(); sub u1 (.a(x)), u2 (.a(y)); endmodule"
        insts = parse_source(src).modules[0].instances
        assert [i.instance_name for i in insts] == ["u1", "u2"]


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_source("module m() endmodule")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse_source("wire w;")

    def test_unclosed_module(self):
        with pytest.raises(ParseError):
            parse_source("module m(); wire w;")

    def test_error_reports_line(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_source("module m();\n  assign = 1;\nendmodule")
