"""Unit tests for netlist data structures."""

import pytest

from repro.hdl.netlist import Netlist, NetlistError


def make_inverter():
    nl = Netlist("inv")
    nl.add_net("a", is_input=True)
    nl.add_net("y", is_output=True)
    nl.add_cell("NOT", ["a"], "y", name="u1")
    return nl


class TestConstruction:
    def test_add_net_and_cell(self):
        nl = make_inverter()
        assert nl.num_cells == 1
        assert nl.nets["y"].driver == "u1"
        assert "u1" in nl.nets["a"].sinks

    def test_duplicate_net_rejected(self):
        nl = Netlist()
        nl.add_net("x")
        with pytest.raises(NetlistError):
            nl.add_net("x")

    def test_duplicate_cell_rejected(self):
        nl = make_inverter()
        nl.add_net("z")
        with pytest.raises(NetlistError):
            nl.add_cell("NOT", ["a"], "z", name="u1")

    def test_double_driver_rejected(self):
        nl = make_inverter()
        with pytest.raises(NetlistError):
            nl.add_cell("BUF", ["a"], "y")

    def test_driving_primary_input_rejected(self):
        nl = make_inverter()
        with pytest.raises(NetlistError):
            nl.add_cell("BUF", ["y"], "a")

    def test_wrong_arity_rejected(self):
        nl = Netlist()
        nl.add_net("a")
        with pytest.raises(NetlistError):
            nl.add_cell("AND2", ["a"], "y")

    def test_unknown_gate_rejected(self):
        nl = Netlist()
        nl.add_net("a")
        with pytest.raises(NetlistError):
            nl.add_cell("FROB", ["a"], "y")

    def test_dff_registers_clock_sink(self):
        nl = Netlist()
        nl.add_net("clk", is_input=True, is_clock=True)
        nl.add_net("d", is_input=True)
        nl.add_cell("DFF", ["d"], "q", name="r1", clock="clk")
        assert "r1" in nl.nets["clk"].sinks
        assert nl.cells["r1"].is_sequential


class TestMutation:
    def test_remove_cell_clears_links(self):
        nl = make_inverter()
        nl.remove_cell("u1")
        assert nl.nets["y"].driver is None
        assert "u1" not in nl.nets["a"].sinks

    def test_rewire_input(self):
        nl = make_inverter()
        nl.add_net("b", is_input=True)
        nl.rewire_input("u1", "a", "b")
        assert nl.cells["u1"].inputs == ["b"]
        assert "u1" not in nl.nets["a"].sinks
        assert "u1" in nl.nets["b"].sinks

    def test_rewire_missing_input_rejected(self):
        nl = make_inverter()
        with pytest.raises(NetlistError):
            nl.rewire_input("u1", "zzz", "a")


class TestQueries:
    def test_fanout_counts_output_port(self):
        nl = make_inverter()
        assert nl.fanout("y") == 1  # primary output counts as a sink
        assert nl.fanout("a") == 1

    def test_topological_order(self):
        nl = Netlist()
        nl.add_net("a", is_input=True)
        nl.add_cell("NOT", ["a"], "b", name="g1")
        nl.add_cell("NOT", ["b"], "c", name="g2")
        nl.add_cell("AND2", ["a", "c"], "d", name="g3")
        order = [c.name for c in nl.topological_cells()]
        assert order.index("g1") < order.index("g2") < order.index("g3")

    def test_combinational_cycle_detected(self):
        nl = Netlist()
        nl.add_net("x")
        nl.add_net("y")
        nl.add_cell("NOT", ["x"], "y")
        nl.add_cell("NOT", ["y"], "x")
        with pytest.raises(NetlistError, match="cycle"):
            nl.topological_cells()

    def test_cycle_through_dff_is_legal(self):
        nl = Netlist()
        nl.add_net("clk", is_input=True)
        nl.add_cell("NOT", ["q"], "d")
        nl.add_cell("DFF", ["d"], "q", clock="clk")
        nl.validate()

    def test_stats_shape(self):
        stats = make_inverter().stats()
        assert stats["cells"] == 1
        assert stats["gate_counts"] == {"NOT": 1}
        assert stats["inputs"] == 1


class TestCloneAndValidate:
    def test_clone_is_deep(self):
        nl = make_inverter()
        other = nl.clone()
        other.remove_cell("u1")
        assert nl.nets["y"].driver == "u1"
        assert other.nets["y"].driver is None

    def test_clone_validates(self):
        nl = make_inverter()
        nl.clone().validate()

    def test_clone_uid_continues(self):
        nl = make_inverter()
        other = nl.clone()
        fresh = other.add_net()
        assert fresh.name not in nl.nets

    def test_validate_passes_on_good_netlist(self):
        make_inverter().validate()

    def test_validate_catches_broken_backlink(self):
        nl = make_inverter()
        nl.nets["a"].sinks.discard("u1")
        with pytest.raises(NetlistError):
            nl.validate()
