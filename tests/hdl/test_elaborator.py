"""Elaborator tests: functional correctness proven by gate-level simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import ElaborationError, elaborate
from repro.hdl.sim import Simulator, evaluate_combinational


def eval_comb(src, top, inputs, outputs):
    """Elaborate, drive word-level inputs, return word-level outputs."""
    nl = elaborate(src, top)
    nl.validate()
    sim = Simulator(nl)
    for name, (value, width) in inputs.items():
        sim.set_word(name, value, width)
    sim.settle()
    return {name: sim.get_word(name, width) for name, width in outputs.items()}


COMB_TEMPLATE = """
module m(input [{w}:0] a, input [{w}:0] b, output [{ow}:0] y);
  assign y = {expr};
endmodule
"""


def comb_result(expr, a, b, w=7, ow=7):
    src = COMB_TEMPLATE.format(w=w, ow=ow, expr=expr)
    out = eval_comb(src, "m", {"a": (a, w + 1), "b": (b, w + 1)}, {"y": ow + 1})
    return out["y"]


class TestCombinationalOperators:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_add(self, a, b):
        assert comb_result("a + b", a, b) == (a + b) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_sub(self, a, b):
        assert comb_result("a - b", a, b) == (a - b) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=15, deadline=None)
    def test_mul(self, a, b):
        assert comb_result("a * b", a, b, ow=15) == (a * b) & 0xFFFF

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_bitwise(self, a, b):
        assert comb_result("a & b", a, b) == a & b
        assert comb_result("a | b", a, b) == a | b
        assert comb_result("a ^ b", a, b) == a ^ b

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_comparisons(self, a, b):
        assert comb_result("a < b", a, b, ow=0) == int(a < b)
        assert comb_result("a >= b", a, b, ow=0) == int(a >= b)
        assert comb_result("a == b", a, b, ow=0) == int(a == b)
        assert comb_result("a != b", a, b, ow=0) == int(a != b)

    @given(st.integers(0, 255))
    @settings(max_examples=25, deadline=None)
    def test_reductions(self, a):
        assert comb_result("&a", a, 0, ow=0) == int(a == 255)
        assert comb_result("|a", a, 0, ow=0) == int(a != 0)
        assert comb_result("^a", a, 0, ow=0) == bin(a).count("1") % 2

    @given(st.integers(0, 255), st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_variable_shifts(self, a, s):
        assert comb_result("a << b", a, s) == (a << s) & 0xFF
        assert comb_result("a >> b", a, s) == a >> s

    def test_constant_shift_is_free_rewiring(self):
        nl = elaborate(
            "module m(input [7:0] a, output [7:0] y); assign y = a << 2; endmodule",
            "m",
        )
        # No MUX gates needed for a constant shift.
        assert nl.stats()["gate_counts"].get("MUX2", 0) == 0

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=25, deadline=None)
    def test_ternary(self, a, b, s):
        src = """
        module m(input s, input [7:0] a, input [7:0] b, output [7:0] y);
          assign y = s ? a : b;
        endmodule
        """
        out = eval_comb(src, "m", {"s": (s, 1), "a": (a, 8), "b": (b, 8)}, {"y": 8})
        assert out["y"] == (a if s else b)

    def test_concat_and_replication(self):
        src = """
        module m(input [3:0] a, output [7:0] y, output [5:0] z);
          assign y = {a, 4'b1001};
          assign z = {3{2'b10}};
        endmodule
        """
        out = eval_comb(src, "m", {"a": (0xA, 4)}, {"y": 8, "z": 6})
        assert out["y"] == 0xA9
        assert out["z"] == 0b101010

    def test_division_by_power_of_two(self):
        assert comb_result("a / 4", 100, 0) == 25
        assert comb_result("a % 8", 100, 0) == 4

    def test_division_by_non_power_raises(self):
        with pytest.raises(ElaborationError):
            comb_result("a / 3", 9, 0)

    def test_logical_and_or(self):
        assert comb_result("a && b", 5, 0, ow=0) == 0
        assert comb_result("a && b", 5, 7, ow=0) == 1
        assert comb_result("a || b", 0, 0, ow=0) == 0


class TestSelects:
    def test_bit_select_read(self):
        src = "module m(input [7:0] a, output y); assign y = a[5]; endmodule"
        out = eval_comb(src, "m", {"a": (0b00100000, 8)}, {"y": 1})
        assert out["y"] == 1

    def test_range_select_read(self):
        src = "module m(input [7:0] a, output [3:0] y); assign y = a[6:3]; endmodule"
        out = eval_comb(src, "m", {"a": (0b01011000, 8)}, {"y": 4})
        assert out["y"] == 0b1011

    def test_dynamic_bit_select(self):
        src = "module m(input [7:0] a, input [2:0] i, output y); assign y = a[i]; endmodule"
        for i in range(8):
            out = eval_comb(src, "m", {"a": (1 << i, 8), "i": (i, 3)}, {"y": 1})
            assert out["y"] == 1

    def test_lvalue_range_select(self):
        src = """
        module m(input [3:0] a, output [7:0] y);
          assign y[3:0] = a;
          assign y[7:4] = ~a;
        endmodule
        """
        out = eval_comb(src, "m", {"a": (0x5, 4)}, {"y": 8})
        assert out["y"] == 0xA5


class TestAlwaysBlocks:
    def test_dff_register(self):
        src = """
        module m(input clk, input [3:0] d, output reg [3:0] q);
          always @(posedge clk) q <= d;
        endmodule
        """
        nl = elaborate(src, "m")
        nl.validate()
        sim = Simulator(nl)
        sim.set_word("d", 9, 4)
        sim.settle()
        assert sim.get_word("q", 4) == 0  # not clocked yet
        sim.step()
        assert sim.get_word("q", 4) == 9

    def test_enable_register_holds_value(self):
        src = """
        module m(input clk, input en, input [3:0] d, output reg [3:0] q);
          always @(posedge clk) if (en) q <= d;
        endmodule
        """
        nl = elaborate(src, "m")
        sim = Simulator(nl)
        sim.set_word("d", 7, 4)
        sim.set_word("en", 1, 1)
        sim.step()
        assert sim.get_word("q", 4) == 7
        sim.set_word("d", 3, 4)
        sim.set_word("en", 0, 1)
        sim.step()
        assert sim.get_word("q", 4) == 7  # held

    def test_sync_reset_pattern(self):
        src = """
        module m(input clk, input rst, input [3:0] d, output reg [3:0] q);
          always @(posedge clk) begin
            if (rst) q <= 4'd0;
            else q <= d;
          end
        endmodule
        """
        nl = elaborate(src, "m")
        sim = Simulator(nl)
        sim.set_word("d", 5, 4)
        sim.set_word("rst", 0, 1)
        sim.step()
        assert sim.get_word("q", 4) == 5
        sim.set_word("rst", 1, 1)
        sim.step()
        assert sim.get_word("q", 4) == 0

    def test_nonblocking_reads_old_value(self):
        """s2 <= s1 must capture s1's pre-edge value (pipeline semantics)."""
        src = """
        module m(input clk, input [3:0] a, output reg [3:0] s2);
          reg [3:0] s1;
          always @(posedge clk) begin
            s1 <= a;
            s2 <= s1;
          end
        endmodule
        """
        nl = elaborate(src, "m")
        assert nl.stats()["sequential"] == 8  # both stages kept
        sim = Simulator(nl)
        sim.set_word("a", 9, 4)
        sim.step()
        assert sim.get_word("s2", 4) == 0  # not yet through stage 2
        sim.step()
        assert sim.get_word("s2", 4) == 9

    def test_blocking_then_nonblocking_mix(self):
        src = """
        module m(input clk, input [3:0] a, output reg [3:0] q);
          reg [3:0] t;
          always @(posedge clk) begin
            t = a + 4'd1;
            q <= t;
          end
        endmodule
        """
        sim = Simulator(elaborate(src, "m"))
        sim.set_word("a", 4, 4)
        sim.step()
        assert sim.get_word("q", 4) == 5  # blocking value visible same edge

    def test_counter_accumulates(self):
        src = """
        module m(input clk, output reg [7:0] cnt);
          always @(posedge clk) cnt <= cnt + 8'd1;
        endmodule
        """
        sim = Simulator(elaborate(src, "m"))
        for _ in range(5):
            sim.step()
        assert sim.get_word("cnt", 8) == 5

    def test_combinational_always_with_case(self):
        src = """
        module m(input [1:0] s, input [3:0] a, b, c, output reg [3:0] y);
          always @(*) begin
            case (s)
              2'd0: y = a;
              2'd1: y = b;
              default: y = c;
            endcase
          end
        endmodule
        """
        for s, expect in [(0, 1), (1, 2), (2, 3), (3, 3)]:
            out = eval_comb(
                src, "m",
                {"s": (s, 2), "a": (1, 4), "b": (2, 4), "c": (3, 4)},
                {"y": 4},
            )
            assert out["y"] == expect

    def test_blocking_assignment_sequencing(self):
        src = """
        module m(input [3:0] a, output reg [3:0] y);
          reg [3:0] t;
          always @(*) begin
            t = a + 4'd1;
            y = t + 4'd1;
          end
        endmodule
        """
        out = eval_comb(src, "m", {"a": (3, 4)}, {"y": 4})
        assert out["y"] == 5

    def test_case_priority_earlier_item_wins(self):
        src = """
        module m(input [1:0] s, output reg y);
          always @(*) begin
            case (s)
              2'd1: y = 1'b1;
              default: y = 1'b0;
            endcase
          end
        endmodule
        """
        assert eval_comb(src, "m", {"s": (1, 2)}, {"y": 1})["y"] == 1
        assert eval_comb(src, "m", {"s": (2, 2)}, {"y": 1})["y"] == 0


class TestArrays:
    def test_register_file_write_read(self):
        src = """
        module rf(input clk, input we, input [1:0] wa, input [7:0] wd,
                  input [1:0] ra, output [7:0] rd);
          reg [7:0] mem [0:3];
          assign rd = mem[ra];
          always @(posedge clk) if (we) mem[wa] <= wd;
        endmodule
        """
        sim = Simulator(elaborate(src, "rf"))
        for addr, data in [(0, 11), (1, 22), (3, 44)]:
            sim.set_word("we", 1, 1)
            sim.set_word("wa", addr, 2)
            sim.set_word("wd", data, 8)
            sim.step()
        sim.set_word("we", 0, 1)
        for addr, data in [(0, 11), (1, 22), (3, 44)]:
            sim.set_word("ra", addr, 2)
            sim.settle()
            assert sim.get_word("rd", 8) == data

    def test_oversized_array_rejected(self):
        src = """
        module big(); reg [63:0] mem [0:65535]; endmodule
        """
        with pytest.raises(ElaborationError, match="too large"):
            elaborate(src, "big")


class TestHierarchy:
    def test_parameterised_instance(self):
        src = """
        module add #(parameter W = 4)(input [W-1:0] a, b, output [W-1:0] s);
          assign s = a + b;
        endmodule
        module top(input [7:0] x, y, output [7:0] z);
          add #(.W(8)) u (.a(x), .b(y), .s(z));
        endmodule
        """
        out = eval_comb(src, "top", {"x": (200, 8), "y": (100, 8)}, {"z": 8})
        assert out["z"] == (300) & 0xFF

    def test_positional_connections(self):
        src = """
        module inv(input a, output y); assign y = ~a; endmodule
        module top(input x, output z); inv u (x, z); endmodule
        """
        assert eval_comb(src, "top", {"x": (1, 1)}, {"z": 1})["z"] == 0

    def test_two_level_hierarchy(self):
        src = """
        module inv(input a, output y); assign y = ~a; endmodule
        module dbl(input a, output y);
          wire m;
          inv u1 (.a(a), .y(m));
          inv u2 (.a(m), .y(y));
        endmodule
        module top(input x, output z); dbl u (.a(x), .y(z)); endmodule
        """
        assert eval_comb(src, "top", {"x": (1, 1)}, {"z": 1})["z"] == 1

    def test_hierarchical_net_names(self):
        src = """
        module inv(input a, output y); assign y = ~a; endmodule
        module top(input x, output z); inv u1 (.a(x), .y(z)); endmodule
        """
        nl = elaborate(src, "top")
        assert any(name.startswith("u1/") for name in nl.nets)

    def test_unknown_module_raises(self):
        src = "module top(); ghost u1 (.a(x)); endmodule"
        with pytest.raises(ElaborationError, match="ghost"):
            elaborate(src, "top")

    def test_unknown_top_raises(self):
        with pytest.raises(ElaborationError):
            elaborate("module m(); endmodule", "nope")

    def test_clog2_parameter(self):
        src = """
        module m #(parameter D = 16, parameter AW = $clog2(D))
                 (input [AW-1:0] a, output [AW-1:0] y);
          assign y = a;
        endmodule
        """
        nl = elaborate(src, "m")
        assert len(nl.primary_inputs) == 4


class TestSimulatorHelpers:
    def test_evaluate_combinational_helper(self):
        src = "module m(input a, b, output y); assign y = a ^ b; endmodule"
        nl = elaborate(src, "m")
        out = evaluate_combinational(nl, {"a": 1, "b": 0})
        assert out["y"] == 1

    def test_set_input_rejects_internal_net(self):
        src = "module m(input a, output y); assign y = ~a; endmodule"
        sim = Simulator(elaborate(src, "m"))
        with pytest.raises(ValueError):
            sim.set_input("y", 1)
