"""Unit tests for the Verilog lexer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.lexer import LexerError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != "EOF"]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "EOF"

    def test_keywords_recognised(self):
        assert kinds("module endmodule")[:2] == ["KEYWORD", "KEYWORD"]

    def test_identifier_with_dollar_and_underscore(self):
        toks = tokenize("my_sig$2 _x")
        assert [t.value for t in toks[:2]] == ["my_sig$2", "_x"]
        assert all(t.kind == "ID" for t in toks[:2])

    def test_escaped_identifier(self):
        toks = tokenize("\\weird[0] ;")
        assert toks[0].kind == "ID"
        assert toks[0].value == "weird[0]"

    def test_numbers_sized_and_unsized(self):
        toks = tokenize("42 8'hFF 4'b1010 16'd100 3'o7")
        assert all(t.kind == "NUMBER" for t in toks[:-1])
        assert values("42 8'hFF")[0] == "42"

    def test_number_with_underscores(self):
        assert values("32'hDEAD_BEEF") == ["32'hDEAD_BEEF"]

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind == "STRING"

    def test_operators_maximal_munch(self):
        assert values("a <= b") == ["a", "<=", "b"]
        assert values("a <<< 2") == ["a", "<<<", "2"]
        assert values("a << 2") == ["a", "<<", "2"]
        assert values("a === b") == ["a", "===", "b"]


class TestCommentsAndDirectives:
    def test_line_comment_skipped(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_directive_line_skipped(self):
        assert values("`timescale 1ns/1ps\nmodule") == ["module"]


class TestPositions:
    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_stray_character_raises_with_position(self):
        with pytest.raises(LexerError, match="line 2"):
            tokenize("ok\n\x01")


class TestPropertyBased:
    @given(st.lists(st.sampled_from(["module", "wire", "foo", "42", "+", "(", ")"]), max_size=30))
    def test_whitespace_insensitivity(self, words):
        text_spaces = " ".join(words)
        text_newlines = "\n".join(words)
        assert values(text_spaces) == values(text_newlines)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_decimal_numbers_round_trip(self, n):
        toks = tokenize(str(n))
        assert toks[0].kind == "NUMBER"
        assert int(toks[0].value) == n

    @given(st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,20}", fullmatch=True))
    def test_identifiers_lex_as_single_token(self, ident):
        toks = tokenize(ident)
        assert len(toks) == 2
        assert toks[0].value == ident
