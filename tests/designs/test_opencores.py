"""Tests for the seven evaluation benchmarks."""

import pytest

from repro.designs.opencores import benchmark_names, get_benchmark
from repro.hdl import elaborate
from repro.synth import DCShell


class TestBenchmarkCatalog:
    def test_seven_designs_in_paper_order(self):
        assert benchmark_names() == [
            "aes",
            "dynamic_node",
            "ethmac",
            "jpeg",
            "riscv32i",
            "swerv",
            "tinyRocket",
        ]

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("cray1")

    def test_cached_instances(self):
        assert get_benchmark("aes") is get_benchmark("aes")

    @pytest.mark.parametrize("name", benchmark_names())
    def test_elaborates_clean(self, name):
        bench = get_benchmark(name)
        netlist = elaborate(bench.verilog, bench.top)
        netlist.validate()
        assert netlist.num_cells > 100

    @pytest.mark.parametrize("name", benchmark_names())
    def test_has_clock_and_description(self, name):
        bench = get_benchmark(name)
        assert bench.clock_period > 0
        assert bench.description
        assert bench.pathologies


class TestBaselineShape:
    """The compile-only baseline must land in Table IV's regime."""

    @pytest.fixture(scope="class")
    def baselines(self):
        results = {}
        for name in benchmark_names():
            bench = get_benchmark(name)
            shell = DCShell()
            shell.add_design(bench.name, bench.verilog, top=bench.top)
            result = shell.run_script(
                f"read_verilog {bench.name}\n"
                f"create_clock -period {bench.clock_period} clk\n"
                "set_wire_load_model -name 5K_heavy_1k\n"
                "compile\n"
            )
            assert result.success, result.error
            results[name] = result.qor
        return results

    def test_violated_designs(self, baselines):
        for name in ("aes", "dynamic_node", "ethmac", "jpeg", "tinyRocket"):
            assert baselines[name].wns < 0, name

    def test_met_designs(self, baselines):
        for name in ("riscv32i", "swerv"):
            assert baselines[name].wns == 0.0, name
            assert baselines[name].cps > 0, name

    def test_size_order_swerv_largest_riscv_smallest(self, baselines):
        areas = sorted(baselines.items(), key=lambda kv: kv[1].area, reverse=True)
        top_two = {name for name, _ in areas[:2]}
        assert "swerv" in top_two
        assert areas[-1][0] in ("riscv32i", "dynamic_node", "tinyRocket")

    def test_ethmac_badly_violated(self, baselines):
        assert baselines["ethmac"].tns < baselines["aes"].tns

    def test_aes_marginally_violated(self, baselines):
        assert -0.5 < baselines["aes"].wns < 0
