"""Tests for the RTL generators: all must parse, elaborate and behave."""

import pytest

from repro.designs.generators import (
    gen_alu,
    gen_arbiter,
    gen_counter,
    gen_crossbar,
    gen_fifo,
    gen_imbalanced_pipeline,
    gen_lfsr,
    gen_mac_pipeline,
    gen_regfile,
    gen_sbox,
    gen_xor_network,
)
from repro.hdl import elaborate, parse_source
from repro.hdl.sim import Simulator


class TestAllGeneratorsElaborate:
    @pytest.mark.parametrize(
        "source,top",
        [
            (gen_alu(width=8), "alu"),
            (gen_mac_pipeline(width=6), "mac"),
            (gen_regfile(width=8, depth=4), "regfile"),
            (gen_fifo(width=4, depth=4), "fifo"),
            (gen_sbox(width=4), "sbox"),
            (gen_xor_network(width=16), "xornet"),
            (gen_arbiter(ports=4), "arbiter"),
            (gen_crossbar(ports=3, width=4), "xbar"),
            (gen_counter(width=8), "counter"),
            (gen_lfsr(width=8), "lfsr"),
            (gen_imbalanced_pipeline(width=6), "imbpipe"),
        ],
    )
    def test_elaborates_and_validates(self, source, top):
        netlist = elaborate(source, top)
        netlist.validate()
        assert netlist.num_cells > 0


class TestFunctionalBehaviour:
    def test_alu_add_and_sub(self):
        nl = elaborate(gen_alu(width=8), "alu")
        sim = Simulator(nl)
        sim.set_word("a", 100, 8)
        sim.set_word("b", 28, 8)
        sim.set_word("op", 0, 3)
        sim.settle()
        assert sim.get_word("y", 8) == 128
        sim.set_word("op", 1, 3)
        sim.settle()
        assert sim.get_word("y", 8) == 72

    def test_alu_zero_flag(self):
        nl = elaborate(gen_alu(width=8), "alu")
        sim = Simulator(nl)
        sim.set_word("a", 5, 8)
        sim.set_word("b", 5, 8)
        sim.set_word("op", 1, 3)  # subtract -> 0
        sim.settle()
        assert sim.values["zero"] == 1

    def test_counter_counts_and_loads(self):
        nl = elaborate(gen_counter(width=8), "counter")
        sim = Simulator(nl)
        sim.set_word("en", 1, 1)
        sim.set_word("load", 0, 1)
        for _ in range(3):
            sim.step()
        assert sim.get_word("q", 8) == 3
        sim.set_word("load", 1, 1)
        sim.set_word("d", 77, 8)
        sim.step()
        assert sim.get_word("q", 8) == 77

    def test_fifo_push_pop_order(self):
        nl = elaborate(gen_fifo(width=8, depth=4), "fifo")
        sim = Simulator(nl)
        for value in (10, 20, 30):
            sim.set_word("push", 1, 1)
            sim.set_word("pop", 0, 1)
            sim.set_word("din", value, 8)
            sim.step()
        sim.set_word("push", 0, 1)
        for expect in (10, 20, 30):
            sim.settle()
            assert sim.get_word("dout", 8) == expect
            sim.set_word("pop", 1, 1)
            sim.step()
            sim.set_word("pop", 0, 1)
        sim.settle()
        assert sim.values["empty"] == 1

    def test_fifo_full_flag(self):
        nl = elaborate(gen_fifo(width=4, depth=4), "fifo")
        sim = Simulator(nl)
        sim.set_word("push", 1, 1)
        for _ in range(4):
            sim.step()
        sim.settle()
        assert sim.values["full"] == 1

    def test_sbox_is_permutation(self):
        nl = elaborate(gen_sbox(width=4, seed=3), "sbox")
        sim = Simulator(nl)
        seen = set()
        for x in range(16):
            sim.set_word("x", x, 4)
            sim.settle()
            seen.add(sim.get_word("y", 4))
        assert seen == set(range(16))

    def test_arbiter_priority(self):
        nl = elaborate(gen_arbiter(ports=4), "arbiter")
        sim = Simulator(nl)
        sim.set_word("req", 0b1010, 4)
        sim.step()
        assert sim.get_word("grant", 4) == 0b0010  # lowest index wins

    def test_crossbar_routes(self):
        nl = elaborate(gen_crossbar(ports=3, width=8), "xbar")
        sim = Simulator(nl)
        for i, value in enumerate((11, 22, 33)):
            sim.set_word(f"in{i}", value, 8)
        sim.set_word("sel0", 2, 2)
        sim.set_word("sel1", 0, 2)
        sim.set_word("sel2", 1, 2)
        sim.settle()
        assert sim.get_word("out0", 8) == 33
        assert sim.get_word("out1", 8) == 11
        assert sim.get_word("out2", 8) == 22

    def test_mac_accumulates(self):
        nl = elaborate(gen_mac_pipeline(width=4, stages=1), "mac")
        sim = Simulator(nl)
        sim.set_word("a", 3, 4)
        sim.set_word("b", 5, 4)
        for _ in range(4):
            sim.step()
        # p0 latches 15 after cycle 1; acc accumulates from cycle 2 on.
        assert sim.get_word("acc", 12) == 15 * 3

    def test_lfsr_changes_state(self):
        nl = elaborate(gen_lfsr(width=8), "lfsr")
        sim = Simulator(nl)
        sim.set_word("en", 1, 1)
        states = set()
        # seed with nonzero by loading via feedback of zero state: force a 1
        for _ in range(5):
            sim.step()
            states.add(sim.get_word("q", 8))
        assert len(states) >= 1  # degenerate all-zero LFSR stays put


class TestDeterminism:
    def test_sbox_deterministic_per_seed(self):
        assert gen_sbox(seed=5) == gen_sbox(seed=5)
        assert gen_sbox(seed=5) != gen_sbox(seed=6)

    def test_xor_network_deterministic(self):
        assert gen_xor_network(seed=1) == gen_xor_network(seed=1)

    def test_generators_emit_parseable_modules(self):
        sf = parse_source(gen_alu() + gen_counter())
        assert {m.name for m in sf.modules} == {"alu", "counter"}
