"""The shared seeded-RNG helper (``repro.rand``).

Every stochastic component — the design-space explorer, the design
generators, the perf reservoir — draws from ``repro.rand`` streams
instead of the global ``random`` module, so results are reproducible
per seed and independent of import order, ``PYTHONHASHSEED`` and
process boundaries.
"""

import pathlib
import random

from repro.rand import derive, rng

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


class TestDerive:
    def test_pinned_values(self):
        # sha256 is platform/process independent; these must never move,
        # or every seeded explorer/generator result silently changes.
        assert derive(0, "explore", 0) == 7093345361476240858
        assert derive(7) == 8719647946811673230

    def test_streams_are_independent(self):
        assert derive(0, "a") != derive(0, "b")
        assert derive(0, "a", 0) != derive(0, "a", 1)
        assert derive(0, "a") != derive(1, "a")

    def test_key_types_mix(self):
        # Ints and strings key distinct streams, not colliding reprs.
        assert derive(0, "1") != derive(0, 1)
        assert derive(0, "a", "b") != derive(0, "ab")


class TestRng:
    def test_bare_seed_matches_random_random(self):
        # Migration contract: rng(seed) with no streams is byte-identical
        # to random.Random(seed), so pre-existing seeded sequences (design
        # generators, benchmarks) did not change when they switched over.
        ours, stdlib = rng(7), random.Random(7)
        assert [ours.random() for _ in range(32)] == [
            stdlib.random() for _ in range(32)
        ]
        assert ours.getrandbits(64) == stdlib.getrandbits(64)

    def test_streamed_rng_is_deterministic(self):
        a = [rng(3, "explore", 1).random() for _ in range(3)]
        b = [rng(3, "explore", 1).random() for _ in range(3)]
        assert a == b

    def test_streams_decorrelate(self):
        draws = {
            stream: rng(0, stream, 0).random()
            for stream in ("explore", "gen", "reservoir")
        }
        assert len(set(draws.values())) == len(draws)


def test_no_module_touches_global_random():
    """``repro.rand`` is the only repro module importing ``random``."""
    offenders = [
        path.relative_to(SRC)
        for path in SRC.rglob("*.py")
        if path.name != "rand.py"
        and any(
            line.startswith(("import random", "from random import"))
            for line in path.read_text().splitlines()
        )
    ]
    assert not offenders, offenders
