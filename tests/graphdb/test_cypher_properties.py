"""Property tests: the Cypher executor vs a networkx reference."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import GraphStore, execute


@st.composite
def labelled_graph(draw):
    """A random small directed graph with labelled nodes."""
    num_nodes = draw(st.integers(2, 8))
    labels = [draw(st.sampled_from(["A", "B"])) for _ in range(num_nodes)]
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_nodes - 1), st.integers(0, num_nodes - 1)
            ),
            max_size=12,
        )
    )
    return num_nodes, labels, edges


def build_stores(num_nodes, labels, edges):
    store = GraphStore()
    ids = [
        store.create_node([labels[i]], idx=i).node_id for i in range(num_nodes)
    ]
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(range(num_nodes))
    for src, dst in edges:
        store.create_rel(ids[src], "E", ids[dst])
        graph.add_edge(src, dst)
    return store, graph


class TestAgainstNetworkx:
    @given(labelled_graph())
    @settings(max_examples=30, deadline=None)
    def test_single_hop_matches(self, data):
        num_nodes, labels, edges = data
        store, graph = build_stores(num_nodes, labels, edges)
        rows = execute(
            store, "MATCH (a)-[:E]->(b) RETURN a.idx AS s, b.idx AS t"
        )
        ours = sorted((r["s"], r["t"]) for r in rows)
        reference = sorted(graph.edges(keys=False))
        assert ours == reference

    @given(labelled_graph())
    @settings(max_examples=30, deadline=None)
    def test_two_hop_matches(self, data):
        num_nodes, labels, edges = data
        store, graph = build_stores(num_nodes, labels, edges)
        rows = execute(
            store,
            "MATCH (a)-[:E]->(m)-[:E]->(b) RETURN a.idx AS s, b.idx AS t",
        )
        ours = sorted((r["s"], r["t"]) for r in rows)
        reference = sorted(
            (s, t)
            for s, m1 in graph.edges(keys=False)
            for m2, t in graph.edges(keys=False)
            if m1 == m2
        )
        assert ours == reference

    @given(labelled_graph())
    @settings(max_examples=30, deadline=None)
    def test_label_count_matches(self, data):
        num_nodes, labels, edges = data
        store, _ = build_stores(num_nodes, labels, edges)
        rows = execute(store, "MATCH (n:A) RETURN count(*) AS n")
        assert rows[0]["n"] == labels.count("A")

    @given(labelled_graph())
    @settings(max_examples=20, deadline=None)
    def test_variable_length_reachability(self, data):
        """*1..k paths find exactly the nx-reachable pairs within k hops."""
        num_nodes, labels, edges = data
        store, graph = build_stores(num_nodes, labels, edges)
        k = 3
        rows = execute(
            store,
            f"MATCH (a)-[:E*1..{k}]->(b) RETURN DISTINCT a.idx AS s, b.idx AS t",
        )
        ours = {(r["s"], r["t"]) for r in rows}
        simple = nx.DiGraph(graph)
        reference = set()
        for src in range(num_nodes):
            lengths = nx.single_source_shortest_path_length(simple, src, cutoff=k)
            for dst, dist in lengths.items():
                if 1 <= dist <= k:
                    reference.add((src, dst))
        # Ours may also include pairs whose shortest simple-path is longer
        # but reachable via edge-disjoint revisits; the reference set must
        # always be covered.
        assert reference <= ours

    @given(labelled_graph(), st.integers(0, 7))
    @settings(max_examples=25, deadline=None)
    def test_where_filter_equivalence(self, data, threshold):
        num_nodes, labels, edges = data
        store, _ = build_stores(num_nodes, labels, edges)
        rows = execute(
            store,
            f"MATCH (n) WHERE n.idx >= {threshold} RETURN n.idx AS i",
        )
        assert sorted(r["i"] for r in rows) == [
            i for i in range(num_nodes) if i >= threshold
        ]
