"""Tests for the Cypher-subset parser and executor."""

import pytest

from repro.graphdb import (
    CypherError,
    CypherExecutionError,
    GraphStore,
    execute,
    parse_cypher,
)


@pytest.fixture
def circuit_store():
    """A small circuit hierarchy: design -> modules -> gates."""
    s = GraphStore()
    execute(s, "CREATE (d:Design {name: 'cpu', area: 5000})")
    execute(
        s,
        "CREATE (m:Module {name: 'alu', kind: 'arithmetic', area: 1200, delay: 0.8})",
    )
    execute(
        s,
        "CREATE (m:Module {name: 'regfile', kind: 'memory', area: 2400, delay: 0.3})",
    )
    execute(s, "CREATE (m:Module {name: 'decoder', kind: 'control', area: 400, delay: 0.5})")
    d = next(s.nodes("Design"))
    for m in s.nodes("Module"):
        s.create_rel(d.node_id, "CONTAINS", m.node_id)
    alu = s.find_one("Module", name="alu")
    dec = s.find_one("Module", name="decoder")
    rf = s.find_one("Module", name="regfile")
    s.create_rel(dec.node_id, "DRIVES", alu.node_id)
    s.create_rel(alu.node_id, "DRIVES", rf.node_id)
    return s


class TestParser:
    def test_simple_match(self):
        q = parse_cypher("MATCH (n:Module) RETURN n")
        assert q.kind == "match"
        assert q.patterns[0].nodes[0].labels == ["Module"]

    def test_property_map_pattern(self):
        q = parse_cypher("MATCH (n:Module {name: 'alu'}) RETURN n.area")
        assert q.patterns[0].nodes[0].properties == {"name": "alu"}

    def test_relationship_direction(self):
        q = parse_cypher("MATCH (a)<-[r:CONTAINS]-(b) RETURN a, b")
        assert q.patterns[0].rels[0].direction == "in"

    def test_variable_length(self):
        q = parse_cypher("MATCH (a)-[*1..3]->(b) RETURN b")
        rel = q.patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (1, 3)

    def test_where_and_or(self):
        q = parse_cypher(
            "MATCH (n) WHERE n.area > 100 AND n.kind = 'memory' OR n.delay < 1 RETURN n"
        )
        assert q.where.op == "OR"

    def test_order_limit(self):
        q = parse_cypher("MATCH (n) RETURN n.area AS a ORDER BY a DESC LIMIT 2")
        assert q.limit == 2
        assert q.order_by[0][1] is True

    def test_create_path(self):
        q = parse_cypher("CREATE (a:X)-[:E]->(b:Y)")
        assert q.kind == "create"
        assert len(q.patterns[0].rels) == 1

    def test_bad_query_raises(self):
        with pytest.raises(CypherError):
            parse_cypher("DELETE everything")

    def test_unterminated_pattern_raises(self):
        with pytest.raises(CypherError):
            parse_cypher("MATCH (a:Module RETURN a")


class TestMatchExecution:
    def test_label_scan(self, circuit_store):
        rows = execute(circuit_store, "MATCH (m:Module) RETURN m.name AS name")
        assert {r["name"] for r in rows} == {"alu", "regfile", "decoder"}

    def test_property_pattern_filter(self, circuit_store):
        rows = execute(
            circuit_store, "MATCH (m:Module {kind: 'memory'}) RETURN m.name AS name"
        )
        assert [r["name"] for r in rows] == ["regfile"]

    def test_where_comparison(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (m:Module) WHERE m.area >= 1200 RETURN m.name AS name",
        )
        assert {r["name"] for r in rows} == {"alu", "regfile"}

    def test_where_contains(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (m:Module) WHERE m.name CONTAINS 'reg' RETURN m.name AS name",
        )
        assert [r["name"] for r in rows] == ["regfile"]

    def test_where_starts_with(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (m:Module) WHERE m.name STARTS WITH 'de' RETURN m.name AS name",
        )
        assert [r["name"] for r in rows] == ["decoder"]

    def test_where_in_list(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (m:Module) WHERE m.kind IN ['memory', 'control'] RETURN m.name AS name",
        )
        assert {r["name"] for r in rows} == {"regfile", "decoder"}

    def test_relationship_traversal(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (d:Design)-[:CONTAINS]->(m:Module) RETURN m.name AS name",
        )
        assert len(rows) == 3

    def test_reverse_traversal(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (m:Module {name: 'alu'})<-[:CONTAINS]-(d) RETURN d.name AS name",
        )
        assert rows == [{"name": "cpu"}]

    def test_variable_length_path(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (a:Module {name: 'decoder'})-[:DRIVES*1..3]->(b) RETURN b.name AS name",
        )
        assert {r["name"] for r in rows} == {"alu", "regfile"}

    def test_multi_hop_chain_pattern(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (a)-[:DRIVES]->(b)-[:DRIVES]->(c) RETURN a.name AS s, c.name AS e",
        )
        assert rows == [{"s": "decoder", "e": "regfile"}]

    def test_order_by_and_limit(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (m:Module) RETURN m.name AS name, m.area AS area ORDER BY area DESC LIMIT 2",
        )
        assert [r["name"] for r in rows] == ["regfile", "alu"]

    def test_count_aggregation(self, circuit_store):
        rows = execute(circuit_store, "MATCH (m:Module) RETURN count(*) AS n")
        assert rows == [{"n": 3}]

    def test_count_zero_matches(self, circuit_store):
        rows = execute(circuit_store, "MATCH (m:Ghost) RETURN count(*) AS n")
        assert rows == [{"n": 0}]

    def test_distinct(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (d:Design)-[:CONTAINS]->(m) RETURN DISTINCT d.name AS name",
        )
        assert rows == [{"name": "cpu"}]

    def test_whole_node_return(self, circuit_store):
        rows = execute(circuit_store, "MATCH (m:Module {name: 'alu'}) RETURN m")
        assert rows[0]["m"].properties["name"] == "alu"

    def test_unbound_variable_raises(self, circuit_store):
        with pytest.raises(CypherExecutionError):
            execute(circuit_store, "MATCH (m:Module) RETURN ghost.name")

    def test_shared_variable_joins_patterns(self, circuit_store):
        rows = execute(
            circuit_store,
            "MATCH (d:Design)-[:CONTAINS]->(m), (x:Module {name: 'alu'})-[:DRIVES]->(m) "
            "RETURN m.name AS name",
        )
        assert rows == [{"name": "regfile"}]


class TestCreateExecution:
    def test_create_node_with_props(self):
        s = GraphStore()
        execute(s, "CREATE (n:Lib {cell: 'NAND2_X1', area: 0.798})")
        node = s.find_one("Lib")
        assert node.properties["cell"] == "NAND2_X1"
        assert node.properties["area"] == 0.798

    def test_create_relationship(self):
        s = GraphStore()
        execute(s, "CREATE (a:A {name: 'x'})-[:LINK {w: 2}]->(b:B)")
        rel = next(s.rels("LINK"))
        assert rel.properties["w"] == 2

    def test_create_returns_bindings(self):
        s = GraphStore()
        rows = execute(s, "CREATE (n:X {v: 1})")
        assert rows[0]["n"].properties["v"] == 1

    def test_null_and_boolean_literals(self):
        s = GraphStore()
        execute(s, "CREATE (n:X {flag: true, other: null})")
        node = s.find_one("X")
        assert node.properties["flag"] is True
        assert node.properties["other"] is None
