"""Unit tests for the property-graph store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import GraphStore, GraphStoreError


@pytest.fixture
def store():
    s = GraphStore()
    a = s.create_node(["Module"], name="alu", area=120.5)
    b = s.create_node(["Module"], name="regfile", area=300.0)
    c = s.create_node(["Design"], name="cpu")
    s.create_rel(c.node_id, "CONTAINS", a.node_id)
    s.create_rel(c.node_id, "CONTAINS", b.node_id)
    s.create_rel(a.node_id, "CONNECTS", b.node_id, nets=4)
    return s


class TestNodes:
    def test_create_and_get(self, store):
        node = store.find_one("Module", name="alu")
        assert node is not None
        assert node.properties["area"] == 120.5

    def test_labels_indexed(self, store):
        assert len(list(store.nodes("Module"))) == 2
        assert len(list(store.nodes("Design"))) == 1

    def test_property_filter(self, store):
        assert store.find_one("Module", name="nope") is None

    def test_missing_node_raises(self, store):
        with pytest.raises(GraphStoreError):
            store.node(999)

    def test_delete_node_removes_rels(self, store):
        alu = store.find_one("Module", name="alu")
        store.delete_node(alu.node_id)
        assert store.num_rels == 1  # only CONTAINS regfile remains
        assert store.find_one("Module", name="alu") is None

    def test_multi_label_node(self):
        s = GraphStore()
        n = s.create_node(["A", "B"])
        assert n.has_label("A") and n.has_label("B")
        assert list(s.nodes("A")) == [n]
        assert list(s.nodes("B")) == [n]


class TestRelationships:
    def test_neighbors_out(self, store):
        cpu = store.find_one("Design")
        names = {n.properties["name"] for n in store.neighbors(cpu.node_id, "CONTAINS")}
        assert names == {"alu", "regfile"}

    def test_neighbors_in(self, store):
        alu = store.find_one("Module", name="alu")
        parents = store.neighbors(alu.node_id, "CONTAINS", direction="in")
        assert parents[0].properties["name"] == "cpu"

    def test_neighbors_both(self, store):
        alu = store.find_one("Module", name="alu")
        both = store.neighbors(alu.node_id, direction="both")
        assert len(both) == 2

    def test_rel_properties(self, store):
        rel = next(store.rels("CONNECTS"))
        assert rel.properties["nets"] == 4

    def test_rel_to_missing_node_rejected(self, store):
        with pytest.raises(GraphStoreError):
            store.create_rel(0, "X", 999)

    def test_delete_rel(self, store):
        rel = next(store.rels("CONNECTS"))
        store.delete_rel(rel.rel_id)
        assert list(store.rels("CONNECTS")) == []


class TestStats:
    def test_counts(self, store):
        assert store.num_nodes == 3
        assert store.num_rels == 3

    def test_labels(self, store):
        assert store.labels() == {"Module", "Design"}

    def test_clear(self, store):
        store.clear()
        assert store.num_nodes == 0
        assert store.num_rels == 0


class TestProperties:
    @given(st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_node_count_invariant(self, n):
        s = GraphStore()
        ids = [s.create_node(["N"], i=i).node_id for i in range(n)]
        assert s.num_nodes == n
        for node_id in ids[: n // 2]:
            s.delete_node(node_id)
        assert s.num_nodes == n - n // 2

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_rel_endpoints_always_exist(self, edges):
        s = GraphStore()
        nodes = [s.create_node(["N"]).node_id for _ in range(10)]
        for a, b in edges:
            s.create_rel(nodes[a], "E", nodes[b])
        for rel in s.rels():
            s.node(rel.start)
            s.node(rel.end)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_delete_is_idempotent_on_rels(self, targets):
        s = GraphStore()
        hub = s.create_node(["Hub"]).node_id
        spokes = [s.create_node(["Spoke"]).node_id for _ in range(5)]
        for t in targets:
            s.create_rel(hub, "E", spokes[t])
        s.delete_node(hub)
        assert s.num_rels == 0
