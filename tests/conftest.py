"""Suite-wide configuration."""

from hypothesis import HealthCheck, settings

# No on-disk example database: interrupted runs otherwise leave behind
# thousands of saved examples whose replay dwarfs the tests themselves.
settings.register_profile(
    "repro",
    database=None,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
