"""Tests for SynthRAG: retrievers, rerankers, knowledge mapping."""

import numpy as np
import pytest

from repro.designs.chipyard import generate_family_variant
from repro.designs.database import STRATEGIES, ExpertDatabase
from repro.llm import chatls_core
from repro.mentor import CircuitEncoder, build_circuit_graph
from repro.rag import (
    LLMReranker,
    ManualRetriever,
    SynthRAG,
    domain_rerank,
    load_library_graph,
    manual_corpus,
    render_strategy_section,
    strategies_for_pathologies,
)
from repro.synth import nangate45
from repro.vectorstore import SearchResult


@pytest.fixture(scope="module")
def small_database():
    encoder = CircuitEncoder(seed=0)
    db = ExpertDatabase(encoder)
    for family in ("rocket", "sha3", "nvdla"):
        db.add_design(
            generate_family_variant(family, 0),
            strategies=["baseline_compile", "high_effort"],
        )
    return db


@pytest.fixture(scope="module")
def rag(small_database):
    design = generate_family_variant("rocket", 1)
    circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
    return SynthRAG.build(small_database, circuit=circuit, llm=chatls_core())


class TestDomainRerank:
    def make_hits(self, sims, metrics):
        return [
            SearchResult(key=i, score=s, payload=m)
            for i, (s, m) in enumerate(zip(sims, metrics))
        ]

    def test_similarity_dominates_with_high_alpha(self):
        hits = self.make_hits([0.9, 0.1], [0.0, 100.0])
        out = domain_rerank(hits, characteristic=lambda m: m, alpha=0.9, beta=0.1)
        assert out[0].key == 0

    def test_characteristic_breaks_ties(self):
        hits = self.make_hits([0.5, 0.5], [1.0, 2.0])
        out = domain_rerank(hits, characteristic=lambda m: m, alpha=0.7, beta=0.3)
        assert out[0].key == 1

    def test_lower_is_better_flip(self):
        hits = self.make_hits([0.5, 0.5], [10.0, 20.0])  # e.g. area
        out = domain_rerank(
            hits, characteristic=lambda m: m, higher_is_better=False
        )
        assert out[0].key == 0

    def test_empty_input(self):
        assert domain_rerank([], characteristic=lambda m: m) == []


class TestManualRetrieval:
    def test_topical_hit(self):
        retriever = ManualRetriever()
        hits = retriever.retrieve("retime registers pipeline stages", k=2)
        assert any(h.command == "optimize_registers" for h in hits)

    def test_distractors_not_retrieved_for_synthesis_query(self):
        retriever = ManualRetriever()
        hits = retriever.retrieve("high fanout buffer insertion", k=3)
        assert all(
            h.command not in ("gui_start", "mail_report", "license_checkout")
            for h in hits
        )

    def test_llm_reranker_applied(self):
        retriever = ManualRetriever(reranker=LLMReranker(chatls_core()))
        hits = retriever.retrieve("flatten hierarchy before compile", k=2)
        assert hits
        assert hits[0].command in ("ungroup", "set_flatten", "compile_ultra")

    def test_lookup(self):
        retriever = ManualRetriever()
        assert retriever.lookup("compile") is not None
        assert retriever.lookup("imaginary_cmd") is None

    def test_corpus_has_distractors(self):
        entries = manual_corpus()
        assert any(not e.is_synthesis for e in entries)
        assert sum(e.is_synthesis for e in entries) >= 10


class TestLibraryGraph:
    def test_all_cells_loaded(self):
        lib = nangate45()
        store = load_library_graph(lib)
        assert len(list(store.nodes("LibCell"))) == len(lib.cells())

    def test_cell_properties_queryable(self, rag):
        info = rag.cell_info("INV_X1")
        assert info is not None
        values = list(info.values())
        assert "INV_X1" in values


class TestStructureRetrieval:
    def test_module_code_fetch(self, rag):
        code = rag.module_code("rocket_v1_alu")
        assert code is not None
        assert "module rocket_v1_alu" in code

    def test_missing_module_returns_none(self, rag):
        assert rag.module_code("nonexistent_module") is None

    def test_raw_cypher_against_circuit(self, rag):
        rows = rag.cypher("MATCH (m:Module) RETURN count(*) AS n")
        assert rows[0]["n"] >= 3


class TestEmbeddingRetrieval:
    def test_strategy_hits_complete(self, small_database, rag):
        entry = small_database.entries["rocket_v0"]
        hits = rag.retrieve_strategies(entry.embedding, k=2)
        assert len(hits) == 2
        for hit in hits:
            assert hit.strategy in STRATEGIES
            assert "cps" in hit.characteristics

    def test_self_retrieval_top_hit(self, small_database, rag):
        entry = small_database.entries["sha3_v0"]
        hits = rag.similar_designs(entry.embedding, k=1)
        assert hits[0].key == "sha3_v0"


class TestKnowledge:
    def test_retiming_pathology_maps_to_retime(self):
        strategies = strategies_for_pathologies(
            ["timing_violated", "register_imbalance"]
        )
        assert strategies[0].name == "ultra_retime"

    def test_fanout_pathology_maps_to_buffering(self):
        strategies = strategies_for_pathologies(["timing_violated", "high_fanout"])
        assert strategies[0].name == "fanout_buffered"

    def test_met_timing_maps_to_area_recovery(self):
        strategies = strategies_for_pathologies(["high_fanout"])  # not violated
        assert [s.name for s in strategies] == ["area_recovery"]

    def test_violated_with_no_specific_pathology(self):
        strategies = strategies_for_pathologies(["timing_violated"])
        assert strategies[0].name == "ultra_flatten"

    def test_render_section_lists_commands(self):
        strategies = strategies_for_pathologies(
            ["timing_violated", "register_imbalance"]
        )
        text = render_strategy_section(pathology_strategies=strategies)
        assert "- command: compile_ultra -retime" in text

    def test_render_dedupes_commands(self):
        strategies = strategies_for_pathologies(
            ["timing_violated", "register_imbalance"]
        )
        text = render_strategy_section(
            pathology_strategies=strategies + strategies
        )
        assert text.count("- command: optimize_registers") == 1


class TestTable1:
    def test_four_rows(self, rag):
        rows = rag.table1()
        assert len(rows) == 4
        assert {r["representation"] for r in rows} == {
            "Graph Embedding",
            "Graph Structure",
            "LLM Embedding",
        }

    def test_command_exists_check(self, rag):
        assert rag.command_exists("compile_ultra -retime")
        assert not rag.command_exists("retime_design -effort high")


class TestRerankOverfetch:
    """Satellite: the kNN stage fetches rerank_overfetch*k candidates only
    when a rerank will actually reorder them."""

    def spy_search(self, index, monkeypatch):
        seen = []
        original = index.search

        def recording(query, k=5):
            seen.append(k)
            return original(query, k=k)

        monkeypatch.setattr(index, "search", recording)
        return seen

    def test_overfetch_applied_when_reranking(self, small_database, monkeypatch):
        from repro.rag import EmbeddingRetriever

        retriever = EmbeddingRetriever(small_database, rerank_overfetch=3)
        seen = self.spy_search(small_database.design_index, monkeypatch)
        query = np.ones(small_database.design_index.dim)
        hits = retriever.retrieve_designs(query, k=2, rerank=True)
        assert seen == [6]
        assert len(hits) <= 2

    def test_no_overfetch_without_rerank(self, small_database, monkeypatch):
        from repro.rag import EmbeddingRetriever

        retriever = EmbeddingRetriever(small_database, rerank_overfetch=3)
        seen = self.spy_search(small_database.design_index, monkeypatch)
        query = np.ones(small_database.design_index.dim)
        retriever.retrieve_designs(query, k=2, rerank=False)
        assert seen == [2]

    def test_module_index_overfetch(self, small_database, monkeypatch):
        from repro.rag import EmbeddingRetriever

        retriever = EmbeddingRetriever(small_database, rerank_overfetch=4)
        seen = self.spy_search(small_database.module_index, monkeypatch)
        query = np.ones(small_database.module_index.dim)
        retriever.retrieve_modules(query, k=3, rerank=True)
        retriever.retrieve_modules(query, k=3, rerank=False)
        assert seen == [12, 3]

    def test_invalid_overfetch_rejected(self, small_database):
        from repro.rag import EmbeddingRetriever

        with pytest.raises(ValueError):
            EmbeddingRetriever(small_database, rerank_overfetch=0)

    def test_manual_retriever_skips_overfetch_without_reranker(self, monkeypatch):
        retriever = ManualRetriever()  # no LLM reranker attached
        seen = self.spy_search(retriever.index, monkeypatch)
        retriever.retrieve("synthesis timing", k=3, rerank=True)
        assert seen == [3]
