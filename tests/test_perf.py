"""Tests for the perf counter/timer registry."""

import threading

from repro import perf
from repro.perf import PerfRegistry


class TestCounters:
    def test_incr_and_read(self):
        reg = PerfRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_timer_accumulates(self):
        reg = PerfRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        snap = reg.snapshot()
        assert snap["timers"]["t"]["calls"] == 2
        assert snap["timers"]["t"]["total_s"] >= 0.0
        assert round(reg.elapsed("t"), 6) == snap["timers"]["t"]["total_s"]

    def test_reset(self):
        reg = PerfRegistry()
        reg.incr("a")
        with reg.timer("t"):
            pass
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}

    def test_snapshot_is_a_copy(self):
        reg = PerfRegistry()
        reg.incr("a")
        snap = reg.snapshot()
        snap["counters"]["a"] = 99
        assert reg.counter("a") == 1

    def test_thread_safety(self):
        reg = PerfRegistry()

        def worker():
            for _ in range(1000):
                reg.incr("shared")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared") == 8000


class TestModuleRegistry:
    def test_module_aliases_hit_global_registry(self):
        perf.reset()
        perf.incr("x", 2)
        with perf.timer("y"):
            pass
        snap = perf.snapshot()
        assert snap["counters"]["x"] == 2
        assert snap["timers"]["y"]["calls"] == 1
        perf.reset()
        assert perf.counter("x") == 0
