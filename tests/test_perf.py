"""Tests for the perf counter/timer registry."""

import threading

import pytest

from repro import perf
from repro.perf import PerfRegistry


class TestCounters:
    def test_incr_and_read(self):
        reg = PerfRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_timer_accumulates(self):
        reg = PerfRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        snap = reg.snapshot()
        assert snap["timers"]["t"]["calls"] == 2
        assert snap["timers"]["t"]["total_s"] >= 0.0
        assert round(reg.elapsed("t"), 6) == snap["timers"]["t"]["total_s"]

    def test_reset(self):
        reg = PerfRegistry()
        reg.incr("a")
        with reg.timer("t"):
            pass
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}

    def test_snapshot_is_a_copy(self):
        reg = PerfRegistry()
        reg.incr("a")
        snap = reg.snapshot()
        snap["counters"]["a"] = 99
        assert reg.counter("a") == 1

    def test_thread_safety(self):
        reg = PerfRegistry()

        def worker():
            for _ in range(1000):
                reg.incr("shared")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared") == 8000


class TestPercentiles:
    def test_snapshot_reports_p50_p95_max(self):
        reg = PerfRegistry()
        for ms in range(1, 101):  # 1ms .. 100ms
            reg.add_time("t", ms / 1000.0)
        snap = reg.snapshot()["timers"]["t"]
        assert snap["calls"] == 100
        assert snap["total_s"] == round(sum(range(1, 101)) / 1000.0, 6)
        assert abs(snap["p50_s"] - 0.050) <= 0.002
        assert abs(snap["p95_s"] - 0.095) <= 0.002
        assert snap["max_s"] == 0.100

    def test_max_is_exact_beyond_reservoir_capacity(self):
        reg = PerfRegistry()
        for _ in range(10 * perf.RESERVOIR_CAPACITY):
            reg.add_time("t", 0.001)
        reg.add_time("t", 9.0)  # a single tail spike sampling could drop
        snap = reg.snapshot()["timers"]["t"]
        assert snap["max_s"] == 9.0
        assert snap["calls"] == 10 * perf.RESERVOIR_CAPACITY + 1

    def test_reservoir_bounded(self):
        reg = PerfRegistry()
        for _ in range(5000):
            reg.add_time("t", 0.001)
        assert len(reg._time_samples["t"].samples) == perf.RESERVOIR_CAPACITY
        assert reg._time_samples["t"].seen == 5000

    def test_percentiles_deterministic(self):
        snaps = []
        for _ in range(2):
            reg = PerfRegistry()
            for i in range(2000):
                reg.add_time("t", (i % 97) / 1000.0)
            snaps.append(reg.snapshot()["timers"]["t"])
        assert snaps[0] == snaps[1]


class TestStatsProviders:
    def test_caches_key_absent_without_providers(self):
        assert "caches" not in PerfRegistry().snapshot()

    def test_provider_output_surfaces_under_caches(self):
        reg = PerfRegistry()
        reg.register_stats_provider("fake", lambda: {"hits": 3, "misses": 1})
        assert reg.snapshot()["caches"] == {"fake": {"hits": 3, "misses": 1}}

    def test_provider_may_call_back_into_registry(self):
        reg = PerfRegistry()

        def provider():
            reg.incr("provider.called")  # must not deadlock on the lock
            return {"ok": True}

        reg.register_stats_provider("reentrant", provider)
        assert reg.snapshot()["caches"]["reentrant"] == {"ok": True}
        assert reg.counter("provider.called") == 1

    def test_reregistering_replaces(self):
        reg = PerfRegistry()
        reg.register_stats_provider("c", lambda: {"v": 1})
        reg.register_stats_provider("c", lambda: {"v": 2})
        assert reg.snapshot()["caches"]["c"] == {"v": 2}

    def test_global_registry_exposes_synthesis_caches(self):
        import repro.synth.cache  # noqa: F401  (registers its providers)

        caches = perf.snapshot().get("caches", {})
        assert "synthesis" in caches and "netlist" in caches
        for stats in (caches["synthesis"], caches["netlist"]):
            assert {"entries", "hits", "misses"} <= set(stats)


class TestReservoirMerge:
    def test_export_includes_seen(self):
        reg = PerfRegistry()
        for _ in range(1000):
            reg.add_time("t", 0.001)
        entry = reg.export_state()["timers"]["t"]
        assert entry["seen"] == 1000
        assert len(entry["samples"]) == perf.RESERVOIR_CAPACITY

    def test_merge_adds_totals_calls_and_exact_max(self):
        donor = PerfRegistry()
        donor.add_time("t", 0.002)
        donor.add_time("t", 9.0)
        target = PerfRegistry()
        target.add_time("t", 0.001)
        target.merge_state(donor.export_state())
        snap = target.snapshot()["timers"]["t"]
        assert snap["calls"] == 3
        assert snap["total_s"] == round(9.003, 6)
        assert snap["max_s"] == 9.0

    def test_merge_weights_by_source_call_counts(self):
        """Skewed sources: a 10x-busier worker deserves 10x representation.

        Donor A timed 2560 calls at ~1ms; donor B timed 256 calls at
        ~100ms.  Both export at most RESERVOIR_CAPACITY samples, so an
        unweighted merge fills the target reservoir ~50/50 and drags the
        pooled p50 from 1ms toward 100ms.  The weighted merge must keep
        the slow population near its true 1-in-11 share.
        """
        donor_a = PerfRegistry()
        for _ in range(2560):
            donor_a.add_time("t", 0.001)
        donor_b = PerfRegistry()
        for _ in range(256):
            donor_b.add_time("t", 0.100)
        target = PerfRegistry()
        target.merge_state(donor_a.export_state())
        target.merge_state(donor_b.export_state())

        reservoir = target._time_samples["t"]
        assert reservoir.seen == 2816
        assert len(reservoir.samples) == perf.RESERVOIR_CAPACITY
        slow_share = sum(1 for s in reservoir.samples if s == 0.100) / len(
            reservoir.samples
        )
        # True share is 256/2816 ~= 9.1%; unweighted merging lands ~50%.
        assert 0.02 <= slow_share <= 0.25

        snap = target.snapshot()["timers"]["t"]
        assert snap["p50_s"] == pytest.approx(0.001)
        assert snap["max_s"] == 0.100

    def test_merge_is_deterministic(self):
        def merged():
            donor = PerfRegistry()
            for i in range(3000):
                donor.add_time("t", (i % 37) / 1000.0)
            target = PerfRegistry()
            for i in range(500):
                target.add_time("t", (i % 11) / 1000.0)
            target.merge_state(donor.export_state())
            return target.snapshot()["timers"]["t"]

        assert merged() == merged()

    def test_merge_tolerates_legacy_state_without_seen(self):
        # Older exports carried only calls; calls == seen for a registry
        # that never merged, so the fallback is exact, not approximate.
        target = PerfRegistry()
        target.merge_state(
            {
                "counters": {},
                "timers": {
                    "t": {"total_s": 0.5, "calls": 5,
                          "samples": [0.1] * 5, "max_s": 0.1},
                },
            }
        )
        reservoir = target._time_samples["t"]
        assert reservoir.seen == 5
        assert target.snapshot()["timers"]["t"]["calls"] == 5

    def test_merge_empty_donor_samples_only_counts_seen(self):
        target = PerfRegistry()
        target.add_time("t", 0.001)
        before = list(target._time_samples["t"].samples)
        target.merge_state(
            {"counters": {}, "timers": {"t": {"total_s": 1.0, "calls": 10,
                                              "samples": [], "seen": 10,
                                              "max_s": 2.0}}}
        )
        reservoir = target._time_samples["t"]
        assert reservoir.samples == before
        assert reservoir.seen == 11
        assert reservoir.max == 2.0


class TestModuleRegistry:
    def test_module_aliases_hit_global_registry(self):
        perf.reset()
        perf.incr("x", 2)
        with perf.timer("y"):
            pass
        snap = perf.snapshot()
        assert snap["counters"]["x"] == 2
        assert snap["timers"]["y"]["calls"] == 1
        perf.reset()
        assert perf.counter("x") == 0
