"""Tests for the perf counter/timer registry."""

import threading

from repro import perf
from repro.perf import PerfRegistry


class TestCounters:
    def test_incr_and_read(self):
        reg = PerfRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_timer_accumulates(self):
        reg = PerfRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        snap = reg.snapshot()
        assert snap["timers"]["t"]["calls"] == 2
        assert snap["timers"]["t"]["total_s"] >= 0.0
        assert round(reg.elapsed("t"), 6) == snap["timers"]["t"]["total_s"]

    def test_reset(self):
        reg = PerfRegistry()
        reg.incr("a")
        with reg.timer("t"):
            pass
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}

    def test_snapshot_is_a_copy(self):
        reg = PerfRegistry()
        reg.incr("a")
        snap = reg.snapshot()
        snap["counters"]["a"] = 99
        assert reg.counter("a") == 1

    def test_thread_safety(self):
        reg = PerfRegistry()

        def worker():
            for _ in range(1000):
                reg.incr("shared")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared") == 8000


class TestPercentiles:
    def test_snapshot_reports_p50_p95_max(self):
        reg = PerfRegistry()
        for ms in range(1, 101):  # 1ms .. 100ms
            reg.add_time("t", ms / 1000.0)
        snap = reg.snapshot()["timers"]["t"]
        assert snap["calls"] == 100
        assert snap["total_s"] == round(sum(range(1, 101)) / 1000.0, 6)
        assert abs(snap["p50_s"] - 0.050) <= 0.002
        assert abs(snap["p95_s"] - 0.095) <= 0.002
        assert snap["max_s"] == 0.100

    def test_max_is_exact_beyond_reservoir_capacity(self):
        reg = PerfRegistry()
        for _ in range(10 * perf.RESERVOIR_CAPACITY):
            reg.add_time("t", 0.001)
        reg.add_time("t", 9.0)  # a single tail spike sampling could drop
        snap = reg.snapshot()["timers"]["t"]
        assert snap["max_s"] == 9.0
        assert snap["calls"] == 10 * perf.RESERVOIR_CAPACITY + 1

    def test_reservoir_bounded(self):
        reg = PerfRegistry()
        for _ in range(5000):
            reg.add_time("t", 0.001)
        assert len(reg._time_samples["t"].samples) == perf.RESERVOIR_CAPACITY
        assert reg._time_samples["t"].seen == 5000

    def test_percentiles_deterministic(self):
        snaps = []
        for _ in range(2):
            reg = PerfRegistry()
            for i in range(2000):
                reg.add_time("t", (i % 97) / 1000.0)
            snaps.append(reg.snapshot()["timers"]["t"])
        assert snaps[0] == snaps[1]


class TestStatsProviders:
    def test_caches_key_absent_without_providers(self):
        assert "caches" not in PerfRegistry().snapshot()

    def test_provider_output_surfaces_under_caches(self):
        reg = PerfRegistry()
        reg.register_stats_provider("fake", lambda: {"hits": 3, "misses": 1})
        assert reg.snapshot()["caches"] == {"fake": {"hits": 3, "misses": 1}}

    def test_provider_may_call_back_into_registry(self):
        reg = PerfRegistry()

        def provider():
            reg.incr("provider.called")  # must not deadlock on the lock
            return {"ok": True}

        reg.register_stats_provider("reentrant", provider)
        assert reg.snapshot()["caches"]["reentrant"] == {"ok": True}
        assert reg.counter("provider.called") == 1

    def test_reregistering_replaces(self):
        reg = PerfRegistry()
        reg.register_stats_provider("c", lambda: {"v": 1})
        reg.register_stats_provider("c", lambda: {"v": 2})
        assert reg.snapshot()["caches"]["c"] == {"v": 2}

    def test_global_registry_exposes_synthesis_caches(self):
        import repro.synth.cache  # noqa: F401  (registers its providers)

        caches = perf.snapshot().get("caches", {})
        assert "synthesis" in caches and "netlist" in caches
        for stats in (caches["synthesis"], caches["netlist"]):
            assert {"entries", "hits", "misses"} <= set(stats)


class TestModuleRegistry:
    def test_module_aliases_hit_global_registry(self):
        perf.reset()
        perf.incr("x", 2)
        with perf.timer("y"):
            pass
        snap = perf.snapshot()
        assert snap["counters"]["x"] == 2
        assert snap["timers"]["y"]["calls"] == 1
        perf.reset()
        assert perf.counter("x") == 0
