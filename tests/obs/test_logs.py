"""Structured logger tests: JSON lines, level filtering, trace correlation."""

import io
import json

import pytest

from repro import obs


def records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestStructuredLogger:
    def test_json_lines_with_fields(self):
        stream = io.StringIO()
        obs.configure_logging("info", stream)
        obs.info("rag.retrieve", mode="manual", hits=3)
        (record,) = records(stream)
        assert record["event"] == "rag.retrieve"
        assert record["level"] == "info"
        assert record["mode"] == "manual"
        assert record["hits"] == 3
        assert record["ts"] > 0

    def test_level_threshold(self):
        stream = io.StringIO()
        obs.configure_logging("warning", stream)
        obs.debug("quiet")
        obs.info("quiet")
        obs.warning("loud")
        obs.error("loud")
        assert [r["level"] for r in records(stream)] == ["warning", "error"]

    def test_disabled_writes_nothing(self):
        stream = io.StringIO()
        obs.configure_logging(None, stream)
        obs.error("never")
        assert stream.getvalue() == ""
        assert not obs.logging_enabled()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs.configure_logging("loudest")

    def test_trace_ids_attached_inside_span(self, tmp_path):
        stream = io.StringIO()
        obs.configure_logging("info", stream)
        obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("op") as sp:
            obs.info("inside")
        obs.info("outside")
        inside, outside = records(stream)
        assert inside["trace"] == sp.trace_id
        assert inside["span"] == sp.span_id
        assert "trace" not in outside

    def test_non_serializable_fields_stringified(self):
        stream = io.StringIO()
        obs.configure_logging("info", stream)
        obs.info("odd", value={1, 2})
        (record,) = records(stream)
        assert isinstance(record["value"], str)
