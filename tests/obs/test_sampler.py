"""Resource sampler tests (procfs readers + the gauge-setting loop)."""

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import (
    DEFAULT_SAMPLE_SECS,
    ResourceSampler,
    count_open_fds,
    read_rss_bytes,
    sample_interval,
)


class TestReaders:
    def test_rss_positive(self):
        rss = read_rss_bytes()
        assert rss is not None and rss > 1024 * 1024  # a CPython process

    def test_open_fds_positive(self):
        fds = count_open_fds()
        assert fds is not None and fds >= 3  # stdio at minimum


class TestInterval:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_SAMPLE_SECS", raising=False)
        assert sample_interval() == DEFAULT_SAMPLE_SECS

    def test_env_override_and_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_SAMPLE_SECS", "2.5")
        assert sample_interval() == 2.5
        monkeypatch.setenv("REPRO_METRICS_SAMPLE_SECS", "0.001")
        assert sample_interval() == 0.05  # floored

    def test_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_SAMPLE_SECS", "soon")
        with pytest.raises(ValueError, match="must be a number"):
            sample_interval()


class TestResourceSampler:
    def test_start_primes_gauges_synchronously(self):
        reg = MetricsRegistry()
        sampler = ResourceSampler(interval=60.0, registry=reg)
        sampler.start()
        try:
            assert sampler.samples == 1  # no loop tick needed
            names = {f.name for f in reg.collect()}
            assert "repro_process_rss_bytes" in names
            assert "repro_process_threads" in names
            assert "repro_process_gc_collections_total" in names
            assert reg.gauge("repro_process_rss_bytes").value() > 0
            assert reg.gauge("repro_process_threads").value() >= 1
        finally:
            sampler.stop()

    def test_loop_samples_on_period(self):
        reg = MetricsRegistry()
        sampler = ResourceSampler(interval=0.05, registry=reg)
        sampler.start()
        try:
            deadline = time.time() + 5.0
            while sampler.samples < 3 and time.time() < deadline:
                time.sleep(0.02)
            assert sampler.samples >= 3
            assert reg.gauge("repro_process_uptime_seconds").value() > 0
        finally:
            sampler.stop()

    def test_stop_is_idempotent_and_start_after_start_is_noop(self):
        sampler = ResourceSampler(interval=60.0, registry=MetricsRegistry())
        assert sampler.start() is sampler
        assert sampler.start() is sampler
        assert sampler.samples == 1
        sampler.stop()
        sampler.stop()
