"""Report CLI tests on a canned trace (golden-ish output assertions)."""

import json

import pytest

from repro.obs.report import load_events, main, percentile, render_report, summarize


def canned_events():
    """A tiny deterministic trace: one root, three rag spans, a snapshot."""
    spans = [
        ("chatls.customize", "s1", None, 0.00, 1.00),
        ("rag.manual", "s2", "s1", 0.10, 0.10),
        ("rag.manual", "s3", "s1", 0.30, 0.20),
        ("rag.manual", "s4", "s1", 0.60, 0.30),
    ]
    events = [{"type": "meta", "pid": 1, "format": "jsonl"}]
    for name, sid, parent, ts, dur in spans:
        events.append(
            {
                "type": "span",
                "name": name,
                "trace": "t1",
                "span": sid,
                "parent": parent,
                "ts": ts,
                "dur": dur,
                "tid": 1,
                "tname": "MainThread",
                "attrs": {"k": 2} if name == "rag.manual" else {},
            }
        )
    events.append(
        {
            "type": "snapshot",
            "ts": 1.0,
            "perf": {
                "counters": {"synthcache.hit": 5, "sta.full": 2},
                "timers": {},
                "caches": {
                    "synthesis": {"entries": 3, "hits": 5, "misses": 4},
                    "netlist": {"entries": 1, "hits": 7, "misses": 1},
                },
            },
        }
    )
    return events


def write_trace(path, events):
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    return str(path)


class TestSummarize:
    def test_stage_aggregation(self):
        summary = summarize(canned_events())
        manual = summary["stages"]["rag.manual"]
        assert manual["calls"] == 3
        assert manual["total_s"] == pytest.approx(0.6)
        assert manual["p50_s"] == pytest.approx(0.2)
        assert manual["p95_s"] == pytest.approx(0.3)
        assert manual["max_s"] == pytest.approx(0.3)
        assert summary["stages"]["chatls.customize"]["calls"] == 1
        assert summary["traces"] == 1

    def test_counters_from_snapshot(self):
        summary = summarize(canned_events())
        assert summary["counters"] == {"synthcache.hit": 5, "sta.full": 2}
        assert summary["caches"]["netlist"]["hits"] == 7

    def test_counters_fall_back_to_root_deltas(self):
        events = [e for e in canned_events() if e["type"] == "span"]
        events[0]["attrs"]["perf"] = {"sta.full": 3}
        summary = summarize(events)
        assert summary["counters"] == {"sta.full": 3}

    def test_slowest_ordering(self):
        slowest = summarize(canned_events())["slowest"]
        assert [s["dur"] for s in slowest] == sorted(
            (s["dur"] for s in slowest), reverse=True
        )


class TestPercentile:
    def test_nearest_rank(self):
        assert percentile([0.1, 0.2, 0.3], 0.5) == 0.2
        assert percentile([0.1, 0.2, 0.3], 0.95) == 0.3
        assert percentile([0.4], 0.5) == 0.4
        assert percentile([], 0.5) == 0.0


class TestRenderReport:
    def test_golden_sections(self):
        text = render_report(canned_events())
        assert "OBSERVABILITY RUN REPORT" in text
        assert "Per-stage time breakdown" in text
        assert "Perf counters" in text
        assert "Caches" in text
        assert "Slowest spans" in text
        # stage row: rag.manual with exact aggregates
        manual_line = next(l for l in text.splitlines() if l.startswith("rag.manual"))
        assert "0.600000" in manual_line  # total
        assert "3" in manual_line  # calls
        assert "0.200000" in manual_line  # p50
        assert "0.300000" in manual_line  # p95
        # counter summary rows
        assert "synthcache.hit" in text and "sta.full" in text
        # slowest span is the root
        slow_section = text[text.index("Slowest spans") :]
        first_row = slow_section.splitlines()[3]
        assert first_row.startswith("chatls.customize")

    def test_stages_sorted_by_total_desc(self):
        text = render_report(canned_events())
        lines = text.splitlines()
        start = lines.index("Per-stage time breakdown") + 3
        assert lines[start].startswith("chatls.customize")
        assert lines[start + 1].startswith("rag.manual")


class TestCLI:
    def test_main_prints_report(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace.jsonl", canned_events())
        assert main([trace]) == 0
        out = capsys.readouterr().out
        assert "Per-stage time breakdown" in out

    def test_main_converts_chrome(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace.jsonl", canned_events())
        chrome_out = tmp_path / "trace.json"
        assert main([trace, "--chrome", str(chrome_out)]) == 0
        document = json.load(open(chrome_out))
        assert any(e["name"] == "rag.manual" for e in document["traceEvents"])

    def test_main_rejects_empty_trace(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace.jsonl", [{"type": "meta"}])
        assert main([trace]) == 1

    def test_load_events_strict_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            load_events(str(path), strict=True)

    def test_load_events_skips_bad_lines_by_default(self, tmp_path, capsys):
        """A truncated tail (worker killed mid-write) must not lose the run."""
        path = tmp_path / "torn.jsonl"
        good = {"type": "span", "name": "a", "trace": "t", "span": "s",
                "parent": None, "ts": 0.0, "dur": 0.1, "tid": 1,
                "tname": "MainThread", "attrs": {}}
        path.write_text(
            json.dumps(good) + "\n"
            + '{"type": "span", "name": "trunca'  # torn mid-record
            + "\n[1, 2, 3]\n"  # valid JSON but not an object
        )
        events = load_events(str(path))
        assert [e["name"] for e in events] == ["a"]
        err = capsys.readouterr().err
        assert "skipped 2 unparseable lines" in err
        assert "torn.jsonl:2" in err  # first bad location reported

    def test_main_survives_truncated_trace(self, tmp_path, capsys):
        events = canned_events()
        trace = tmp_path / "trace.jsonl"
        text = "\n".join(json.dumps(e) for e in events) + "\n"
        trace.write_text(text + '{"type": "span", "name": "to')  # torn tail
        assert main([str(trace)]) == 0
        assert "Per-stage time breakdown" in capsys.readouterr().out

    def test_main_fails_when_no_line_parses(self, tmp_path, capsys):
        trace = tmp_path / "all_torn.jsonl"
        trace.write_text('{"a\n{"b\n')
        assert main([str(trace)]) == 1
        assert "no spans recorded" in capsys.readouterr().err
