"""Process-backend tracing contract: sidecar traces and report merging.

``contextvars`` do not cross process boundaries, so pool workers cannot
attach their spans to the parent's harness span.  The documented
contract instead: each worker writes ``$REPRO_TRACE.wNN`` with its task
spans re-rooted (carrying ``worker``/``index`` attributes), and
``repro.obs.report`` merges the sidecars — minus their snapshot
records — into the parent report.
"""

import glob
import os

import pytest

from repro import obs, perf
from repro.obs.report import load_events_with_sidecars, render_report, summarize
from repro.parallel import parallel_map, shutdown_pools


def _traced_square(x: int) -> int:
    with obs.span("test.work", x=x):
        return x * x


@pytest.fixture
def traced_process_run(tmp_path, monkeypatch):
    trace = str(tmp_path / "trace.jsonl")
    # workers pick the sidecar path up from the environment at spawn
    monkeypatch.setenv("REPRO_TRACE", trace)
    # the registry is process-global and cumulative; start from zero so
    # the trace's shutdown snapshot counts exactly this run's tasks
    perf.reset()
    tracer = obs.configure(trace)
    try:
        result = parallel_map(
            _traced_square, range(8), jobs=2, backend="process", label="traced"
        )
        # order matters: pool shutdown merges worker perf into this
        # process first, so the tracer's final snapshot includes it
        shutdown_pools()
        tracer.shutdown()
    finally:
        obs.configure(None)
    return trace, result


class TestSidecarTraces:
    def test_workers_write_sidecars(self, traced_process_run):
        trace, result = traced_process_run
        assert result == [x * x for x in range(8)]
        sidecars = sorted(glob.glob(f"{trace}.w*"))
        assert len(sidecars) == 2
        assert all(os.path.getsize(p) > 0 for p in sidecars)

    def test_merged_events_carry_worker_spans(self, traced_process_run):
        trace, _ = traced_process_run
        events = load_events_with_sidecars(trace)
        tasks = [
            e for e in events
            if e.get("type") == "span" and e["name"] == "eval.task"
        ]
        assert len(tasks) == 8
        assert {t["attrs"]["worker"] for t in tasks} == {0, 1}
        assert sorted(t["attrs"]["index"] for t in tasks) == list(range(8))
        # task bodies traced in the worker are present too
        assert sum(
            1 for e in events
            if e.get("type") == "span" and e["name"] == "test.work"
        ) == 8

    def test_sidecar_snapshots_are_dropped(self, traced_process_run):
        trace, _ = traced_process_run
        events = load_events_with_sidecars(trace)
        snapshots = [e for e in events if e.get("type") == "snapshot"]
        assert len(snapshots) == 1  # the parent's only

    def test_report_shows_per_worker_stats(self, traced_process_run):
        trace, _ = traced_process_run
        events = load_events_with_sidecars(trace)
        summary = summarize(events)
        workers = {row["worker"] for row in summary["workers"]}
        assert workers == {"w00", "w01"}
        total_tasks = sum(row["tasks"] for row in summary["workers"])
        assert total_tasks == 8
        rendered = render_report(events)
        assert "Process-pool workers" in rendered
        assert "backend=process" in rendered

    def test_parallel_section_excluded_from_caches(self, traced_process_run):
        trace, _ = traced_process_run
        summary = summarize(load_events_with_sidecars(trace))
        assert "parallel" not in summary["caches"]
        assert summary["parallel"]["backend"] == "process"
        assert summary["parallel"]["jobs"] == 2
