"""End-to-end trace of a real customization run (the acceptance check):

every SynthExpert step span and every SynthRAG retrieval span — including
those emitted from ``parallel_map`` worker threads — must be a descendant
of the ``chatls.customize`` root span.
"""

import json

import pytest

from repro import obs
from repro.core import ChatLS
from repro.designs import get_benchmark
from repro.designs.chipyard import generate_family_variant
from repro.designs.database import ExpertDatabase
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script
from repro.mentor import CircuitEncoder


@pytest.fixture(scope="module")
def db():
    database = ExpertDatabase(CircuitEncoder(seed=0))
    for family in ("rocket", "sha3"):
        database.add_design(
            generate_family_variant(family, 0),
            strategies=["baseline_compile", "ultra_retime"],
        )
    return database


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory, db):
    result, spans = _run_traced_pass_at_k(tmp_path_factory.mktemp("obs"), db)
    # the module-scoped run outlives the per-test reset fixture, so
    # restore the disabled default here too
    obs.configure(None)
    return result, spans


def _run_traced_pass_at_k(tmp_path, db):
    # These tests assert the *thread* backend's span-nesting contract
    # (worker spans descend from the customize root).  The process
    # backend re-roots worker spans into sidecar traces instead — that
    # contract is covered by tests/obs/test_process_trace.py — so the
    # traced run is pinned to threads regardless of the ambient env.
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_PARALLEL_BACKEND", "thread")
    try:
        return _run_traced_pass_at_k_threaded(tmp_path, db)
    finally:
        patcher.undo()


def _run_traced_pass_at_k_threaded(tmp_path, db):
    tracer = obs.configure(str(tmp_path / "trace.jsonl"))
    bench = get_benchmark("aes")
    result = ChatLS(db).customize_pass_at_k(
        bench.verilog,
        bench.name,
        baseline_script(bench),
        TIMING_REQUIREMENT,
        k=2,
        top=bench.top,
        clock_period=bench.clock_period,
        jobs=2,
    )
    tracer.shutdown()
    with open(tracer.path) as fh:
        events = [json.loads(line) for line in fh if line.strip()]
    return result, [e for e in events if e.get("type") == "span"]


class TestTracedCustomization:
    def test_retrieval_and_expert_spans_descend_from_root(self, traced_run):
        result, spans = traced_run
        assert result.executable
        by_id = {s["span"]: s for s in spans}
        roots = [s for s in spans if s["name"] == "chatls.customize"]
        assert len(roots) == 1
        root_id = roots[0]["span"]

        def has_root_ancestor(record):
            while record.get("parent"):
                record = by_id[record["parent"]]
                if record["span"] == root_id:
                    return True
            return False

        checked = [
            s
            for s in spans
            if s["name"].startswith(("rag.", "expert.step"))
        ]
        assert checked, "expected rag/expert spans in the trace"
        assert all(has_root_ancestor(s) for s in checked)
        # spans genuinely came from parallel worker threads
        worker_spans = [s for s in checked if s["tname"] != "MainThread"]
        assert worker_spans, "expected retrieval spans from worker threads"
        # all spans of the run share the root's trace id
        assert {s["trace"] for s in checked} == {roots[0]["trace"]}

    def test_stage_coverage(self, traced_run):
        _, spans = traced_run
        names = {s["name"] for s in spans}
        for expected in (
            "chatls.customize",
            "chatls.prepare",
            "chatls.sample",
            "chatls.draft",
            "expert.refine",
            "expert.step",
            "rag.embedding",
            "rag.manual",
            "eval.task",
            "synth.synthesize",
            "synth.script",
            "synth.compile",
            "synth.techmap",
            "synth.optimize",
            "synth.sta",
        ):
            assert expected in names, f"missing stage span {expected}"

    def test_sta_spans_carry_mode_and_perf_deltas(self, traced_run):
        _, spans = traced_run
        sta = [s for s in spans if s["name"] == "synth.sta"]
        assert sta
        assert {s["attrs"]["mode"] for s in sta} <= {"full", "incremental"}
        root = next(s for s in spans if s["name"] == "chatls.customize")
        delta = root["attrs"].get("perf", {})
        assert delta.get("sta.full", 0) + delta.get("sta.incremental", 0) > 0
