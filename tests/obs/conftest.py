"""Observability tests configure the global tracer/logger; always restore
the disabled defaults so no state leaks into other tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_observability():
    yield
    obs.configure(None)
    obs.configure_logging(None)
