"""Run-ledger tests: manifests, resolution, regression diffing, CLI gate."""

import copy
import json
import os

import pytest

from repro import perf
from repro.obs import ledger
from repro.obs.ledger import (
    Thresholds,
    build_manifest,
    diff_manifests,
    latest_run,
    ledger_enabled,
    list_runs,
    load_manifest,
    qor_rows,
    record_run,
    render_diff,
    resolve_run,
    write_manifest,
)
from repro.obs.report import main as report_main
from repro.synth.reports import QoRSnapshot


def snap(design="aes", wns=-0.1, cps=1.9, tns=-0.5, area=1200.0):
    return QoRSnapshot(
        design=design, wns=wns, cps=cps, tns=tns, area=area,
        num_violations=1, num_cells=100, num_registers=10,
        max_fanout=8, leakage_nw=1.0, dynamic_uw=2.0,
    )


class TestQorRows:
    def test_snapshot_objects_and_dicts_normalize(self):
        rows = qor_rows(
            {
                "ChatLS/aes": snap(),
                "GPT-4o/aes": {"wns": 0.25, "cps": 2.25, "tns": 0.0, "area": 1000.0},
                "Claude-3.5/aes": None,  # failed cell: skipped, not crashed
            }
        )
        assert set(rows) == {"ChatLS/aes", "GPT-4o/aes"}
        assert rows["ChatLS/aes"] == {
            "wns": -0.1, "cps": 1.9, "tns": -0.5, "area": 1200.0
        }
        assert rows["GPT-4o/aes"]["area"] == 1000.0

    def test_none_input(self):
        assert qor_rows(None) == {}


class TestManifest:
    def test_build_contains_identity_and_perf(self):
        perf.reset()
        perf.incr("ledger.test_counter", 3)
        perf.add_time("ledger.test_stage", 0.01)
        try:
            manifest = build_manifest("table3", qor={"ChatLS/aes": snap()})
        finally:
            perf.reset()
        assert manifest["schema"] == ledger.MANIFEST_SCHEMA
        assert manifest["label"] == "table3"
        assert manifest["run_id"].endswith("-table3")
        assert manifest["counters"]["ledger.test_counter"] == 3
        assert manifest["stages"]["ledger.test_stage"]["calls"] == 1
        assert manifest["qor"]["ChatLS/aes"]["cps"] == 1.9
        assert "python" in manifest and "hostname" in manifest
        assert isinstance(manifest["env"], dict)
        assert "REPRO_PARALLEL_WORKER" not in manifest["env"]

    def test_env_fingerprint_captures_repro_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_PARALLEL_WORKER", "1")  # excluded
        manifest = build_manifest("t")
        assert manifest["env"]["REPRO_JOBS"] == "4"
        assert "REPRO_PARALLEL_WORKER" not in manifest["env"]

    def test_write_load_roundtrip_atomic(self, tmp_path):
        manifest = build_manifest("t", extra={"note": "x"})
        path = write_manifest(manifest, str(tmp_path))
        assert os.path.basename(path) == f"{manifest['run_id']}.json"
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        loaded = load_manifest(path)
        assert loaded["run_id"] == manifest["run_id"]
        assert loaded["extra"] == {"note": "x"}

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(str(path))


class TestRecordRun:
    def test_disabled_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
        assert not ledger_enabled()
        assert record_run("t") is None

    def test_enabled_writes_manifest(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path))
        assert ledger_enabled()
        path = record_run("smoke", qor={"baseline/aes": snap()})
        assert path is not None and os.path.isfile(path)
        assert load_manifest(path)["label"] == "smoke"

    def test_list_latest_resolve(self, tmp_path):
        paths = [
            write_manifest(build_manifest(label), str(tmp_path))
            for label in ("a", "b", "c")
        ]
        assert list_runs(str(tmp_path)) == sorted(paths)
        assert latest_run(str(tmp_path)) == sorted(paths)[-1]
        # "latest" excluding the newest returns the one before it
        assert latest_run(str(tmp_path), exclude=paths[-1]) == sorted(paths)[-2]
        run_id = load_manifest(paths[0])["run_id"]
        assert resolve_run(run_id, str(tmp_path)) == paths[0]
        assert resolve_run(paths[1], str(tmp_path)) == paths[1]
        assert resolve_run("latest", str(tmp_path)) == sorted(paths)[-1]
        with pytest.raises(FileNotFoundError):
            resolve_run("nope", str(tmp_path))

    def test_latest_empty_dir(self, tmp_path):
        assert latest_run(str(tmp_path)) is None
        with pytest.raises(FileNotFoundError, match="no manifests"):
            resolve_run("latest", str(tmp_path))


def base_manifest():
    return {
        "run_id": "base-run",
        "stages": {
            "eval.cell": {"total_s": 10.0, "calls": 9, "p50_s": 1.0,
                          "p95_s": 2.0, "max_s": 2.5},
            "rag.manual": {"total_s": 0.01, "calls": 100, "p50_s": 0.0001,
                           "p95_s": 0.0002, "max_s": 0.0003},
        },
        "caches": {
            "synthesis": {"entries": 10, "hits": 80, "misses": 20},
            "tiny": {"entries": 1, "hits": 2, "misses": 1},
        },
        "qor": {
            "ChatLS/aes": {"wns": 0.25, "cps": 2.25, "tns": 0.0, "area": 1200.0},
        },
    }


class TestDiff:
    def test_identical_runs_are_ok(self):
        base = base_manifest()
        new = copy.deepcopy(base)
        new["run_id"] = "new-run"
        result = diff_manifests(base, new)
        assert result.ok and not result.regressions
        assert "verdict: OK" in render_diff(result)

    def test_latency_regression_trips(self):
        new = copy.deepcopy(base_manifest())
        new["stages"]["eval.cell"]["p95_s"] = 4.0  # 2x growth, >1ms delta
        result = diff_manifests(base_manifest(), new)
        assert not result.ok
        assert any("eval.cell p95_s" in r for r in result.regressions)
        assert "verdict: REGRESSION" in render_diff(result)

    def test_micro_stage_jitter_below_abs_floor_ignored(self):
        new = copy.deepcopy(base_manifest())
        new["stages"]["rag.manual"]["p50_s"] = 0.0005  # 5x, but only 0.4ms
        assert diff_manifests(base_manifest(), new).ok

    def test_latency_improvement_reported(self):
        new = copy.deepcopy(base_manifest())
        new["stages"]["eval.cell"]["p50_s"] = 0.4
        result = diff_manifests(base_manifest(), new)
        assert result.ok
        assert any("faster" in i for i in result.improvements)

    def test_one_sided_stage_is_a_note_not_a_regression(self):
        new = copy.deepcopy(base_manifest())
        new["stages"]["brand.new_stage"] = {"p50_s": 9.0, "p95_s": 9.0}
        del new["stages"]["rag.manual"]
        result = diff_manifests(base_manifest(), new)
        assert result.ok
        assert any("brand.new_stage only in new" in n for n in result.notes)
        assert any("rag.manual only in base" in n for n in result.notes)

    def test_cache_hit_rate_drop_trips(self):
        new = copy.deepcopy(base_manifest())
        new["caches"]["synthesis"] = {"entries": 10, "hits": 50, "misses": 50}
        result = diff_manifests(base_manifest(), new)
        assert any("cache synthesis hit rate" in r for r in result.regressions)

    def test_low_traffic_cache_ignored(self):
        new = copy.deepcopy(base_manifest())
        new["caches"]["tiny"] = {"entries": 1, "hits": 0, "misses": 3}  # 3 lookups
        assert diff_manifests(base_manifest(), new).ok

    def test_qor_sense_map(self):
        # WNS down = worse; area up = worse; both flagged.
        new = copy.deepcopy(base_manifest())
        new["qor"]["ChatLS/aes"]["wns"] = 0.10
        new["qor"]["ChatLS/aes"]["area"] = 1400.0
        result = diff_manifests(base_manifest(), new)
        flagged = "\n".join(result.regressions)
        assert "wns" in flagged and "area" in flagged
        # area down = better
        better = copy.deepcopy(base_manifest())
        better["qor"]["ChatLS/aes"]["area"] = 1000.0
        result2 = diff_manifests(base_manifest(), better)
        assert result2.ok and any("area" in i for i in result2.improvements)

    def test_thresholds_are_configurable(self):
        new = copy.deepcopy(base_manifest())
        new["stages"]["eval.cell"]["p95_s"] = 4.0
        loose = Thresholds(latency_ratio=3.0)
        assert diff_manifests(base_manifest(), new, loose).ok


class TestDiffCLI:
    def write(self, tmp_path, manifest, name):
        path = tmp_path / name
        path.write_text(json.dumps(manifest))
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        base = self.write(tmp_path, base_manifest(), "base.json")
        new_manifest = copy.deepcopy(base_manifest())
        new_manifest["run_id"] = "new-run"
        new = self.write(tmp_path, new_manifest, "new.json")
        assert report_main(["--diff", base, new]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_deliberate_regression_exits_nonzero(self, tmp_path, capsys):
        """Satellite: a 2x-latency + hit-rate-drop run must fail the gate."""
        base = self.write(tmp_path, base_manifest(), "base.json")
        worse = copy.deepcopy(base_manifest())
        worse["run_id"] = "worse-run"
        worse["stages"]["eval.cell"]["p50_s"] = 2.0   # 2x the baseline
        worse["stages"]["eval.cell"]["p95_s"] = 4.0
        worse["caches"]["synthesis"] = {"entries": 10, "hits": 40, "misses": 60}
        new = self.write(tmp_path, worse, "worse.json")
        assert report_main(["--diff", base, new]) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSION" in out
        assert "eval.cell" in out and "synthesis" in out

    def test_baseline_latest_from_ledger_dir(self, tmp_path, capsys):
        write_manifest(dict(base_manifest(), run_id="000-base"), str(tmp_path))
        new_manifest = copy.deepcopy(base_manifest())
        new_manifest["run_id"] = "zzz-new"
        new_path = write_manifest(new_manifest, str(tmp_path))
        code = report_main(
            ["--diff", new_path, "--baseline", "latest",
             "--ledger-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "base: 000-base" in out and "new:  zzz-new" in out

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        base = self.write(tmp_path, base_manifest(), "base.json")
        assert report_main(["--diff", base, base, base]) == 2
        assert report_main(["--diff", base]) == 2  # needs --baseline
        assert (
            report_main(["--diff", base, base, "--baseline", "latest"]) == 2
        )
        assert report_main(["--diff", "missing.json", base]) == 2
        capsys.readouterr()

    def test_thresholds_flags_reach_diff(self, tmp_path):
        base = self.write(tmp_path, base_manifest(), "base.json")
        worse = copy.deepcopy(base_manifest())
        worse["run_id"] = "worse"
        worse["stages"]["eval.cell"]["p95_s"] = 4.0
        new = self.write(tmp_path, worse, "worse.json")
        assert report_main(["--diff", base, new]) == 1
        assert report_main(["--diff", base, new, "--latency-ratio", "3.0"]) == 0
