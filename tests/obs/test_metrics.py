"""Typed metrics registry, exposition format, perf bridge and endpoint."""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import perf
from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_perf,
    parse_exposition,
    render,
    sanitize_name,
)
from repro.parallel import parallel_map


@pytest.fixture(autouse=True)
def _stop_endpoint():
    yield
    metrics.stop_server()


def scrape(port: int, path: str = "/metrics") -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
        assert r.status == 200
        return r.read().decode()


class TestCounter:
    def test_inc_and_labelled_children(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total", "help text")
        c.inc()
        c.inc(4, kind="a")
        c.inc(kind="a")
        assert c.value() == 1
        assert c.value(kind="a") == 5
        family = c.collect()
        assert family.type == "counter"
        assert len(family.samples) == 2

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError, match="only increase"):
            c.inc(-1)

    def test_rejects_bad_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok").inc(**{"bad-label": "v"})

    def test_sanitize_name(self):
        assert sanitize_name("synthcache.hit") == "synthcache_hit"
        assert sanitize_name("9lives") == "_9lives"


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.dec(3)
        assert g.value() == 7

    def test_callback_child_evaluated_at_collect(self):
        g = MetricsRegistry().gauge("g")
        state = {"v": 1.0}
        g.set_function(lambda: state["v"], src="live")
        state["v"] = 42.0
        assert g.value(src="live") == 42.0
        family = g.collect()
        assert family.samples[0].value == 42.0

    def test_dead_callback_skipped_at_collect(self):
        g = MetricsRegistry().gauge("g")
        g.set_function(lambda: 1 / 0, src="dead")
        g.set(5, src="ok")
        family = g.collect()
        assert [(s.labels["src"], s.value) for s in family.samples] == [("ok", 5.0)]


class TestHistogram:
    def test_buckets_cumulative_and_exact_sum_count(self):
        h = MetricsRegistry().histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        family = h.collect()
        by_le = {
            s.labels["le"]: s.value
            for s in family.samples
            if s.name == "h_seconds_bucket"
        }
        assert by_le == {"0.01": 1, "0.1": 2, "1": 3, "+Inf": 4}
        total = next(s for s in family.samples if s.name == "h_seconds_sum")
        count = next(s for s in family.samples if s.name == "h_seconds_count")
        assert total.value == pytest.approx(5.555)
        assert count.value == 4

    def test_boundary_value_lands_in_its_bucket(self):
        # le is an upper *inclusive* bound: observe(0.1) counts in le="0.1".
        h = MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)
        by_le = {s.labels["le"]: s.value for s in h.collect().samples if "le" in s.labels}
        assert by_le["0.1"] == 1

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_collect_drops_empty_families(self):
        reg = MetricsRegistry()
        reg.counter("never_used_total")
        reg.counter("used_total").inc()
        assert [f.name for f in reg.collect()] == ["used_total"]

    def test_broken_callback_does_not_kill_scrape(self):
        reg = MetricsRegistry()
        reg.counter("ok_total").inc()
        reg.register_callback("boom", lambda: 1 / 0)
        assert [f.name for f in reg.collect()] == ["ok_total"]


class TestExpositionRoundTrip:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "Jobs.").inc(3, queue='we"ird\\path')
        reg.gauge("depth").set(2.5, pool="p0")
        h = reg.histogram("lat_seconds", "Latency.", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(7.0)
        return reg

    def test_every_line_parses_and_types_survive(self):
        types, samples = parse_exposition(render(self.build()))
        assert types == {
            "jobs_total": "counter",
            "depth": "gauge",
            "lat_seconds": "histogram",
        }
        job = next(s for s in samples if s.name == "jobs_total")
        assert job.labels == {"queue": 'we"ird\\path'}  # escapes round-trip
        assert job.value == 3

    def test_histogram_invariants_validated(self):
        types, samples = parse_exposition(render(self.build()))
        by_le = {s.labels["le"]: s.value for s in samples if s.name == "lat_seconds_bucket"}
        assert by_le == {"0.01": 1, "0.1": 2, "+Inf": 3}

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable sample"):
            parse_exposition("!!! not a metric\n")
        with pytest.raises(ValueError, match="bad TYPE"):
            parse_exposition("# TYPE x bogus_kind\n")
        with pytest.raises(ValueError, match="bad value"):
            parse_exposition("x twelve\n")

    def test_parser_rejects_decreasing_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="bucket counts decrease"):
            parse_exposition(text)

    def test_parser_rejects_inf_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
        )
        with pytest.raises(ValueError, match="!="):
            parse_exposition(text)


class TestPerfBridge:
    def test_counters_timers_and_caches_bridge(self):
        perf.reset()
        try:
            perf.incr("bridge.test_event", 7)
            for ms in (1, 2, 50):
                perf.add_time("bridge.test_stage", ms / 1000.0)
            families = {f.name: f for f in collect_perf()}
            events = families["repro_perf_events_total"]
            assert any(
                s.labels.get("name") == "bridge.test_event" and s.value == 7
                for s in events.samples
            )
            stage = [
                s for s in families["repro_stage_seconds"].samples
                if s.labels.get("stage") == "bridge.test_stage"
            ]
            count = next(s for s in stage if s.name == "repro_stage_seconds_count")
            assert count.value == 3
            total = next(s for s in stage if s.name == "repro_stage_seconds_sum")
            assert total.value == pytest.approx(0.053)
            # cumulative bucket counts never decrease and +Inf == count
            buckets = [s for s in stage if s.name == "repro_stage_seconds_bucket"]
            values = [s.value for s in buckets]
            assert values == sorted(values)
            assert values[-1] == 3
        finally:
            perf.reset()

    def test_cache_stats_and_hit_ratio(self):
        # collect_perf reads the module-global perf registry; register a
        # throwaway provider there and neutralize it afterwards (providers
        # cannot be removed, but an empty dict emits no samples).
        perf.register_stats_provider(
            "bridge_test_cache", lambda: {"entries": 2, "hits": 3, "misses": 1}
        )
        try:
            families = {f.name: f for f in collect_perf()}
            stats = {
                (s.labels["stat"], s.value)
                for s in families["repro_cache_stat"].samples
                if s.labels.get("cache") == "bridge_test_cache"
            }
            assert stats == {("entries", 2.0), ("hits", 3.0), ("misses", 1.0)}
            ratio = next(
                s for s in families["repro_cache_hit_ratio"].samples
                if s.labels.get("cache") == "bridge_test_cache"
            )
            assert ratio.value == pytest.approx(0.75)
        finally:
            perf.register_stats_provider("bridge_test_cache", lambda: {})

    def test_global_render_parses(self):
        # Whatever the process accumulated so far must render cleanly.
        parse_exposition(render())


class TestEnvGate:
    def test_metrics_port_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        assert metrics.metrics_port() is None
        assert not metrics.metrics_enabled()
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        assert metrics.metrics_port() == 0
        assert metrics.metrics_enabled()
        monkeypatch.setenv("REPRO_METRICS_PORT", "9464")
        assert metrics.metrics_port() == 9464
        monkeypatch.setenv("REPRO_METRICS_PORT", "banana")
        with pytest.raises(ValueError, match="integer"):
            metrics.metrics_port()
        monkeypatch.setenv("REPRO_METRICS_PORT", "70000")
        with pytest.raises(ValueError, match="out of range"):
            metrics.metrics_port()

    def test_ensure_server_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS_PORT", raising=False)
        assert metrics.ensure_server() is None
        assert metrics.active_server() is None

    def test_ensure_server_starts_when_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        server = metrics.ensure_server()
        assert server is not None
        assert server.port > 0
        assert metrics.ensure_server() is server  # idempotent
        assert "ok" in scrape(server.port, "/healthz")


class TestEndpoint:
    def test_serves_metrics_and_404(self):
        server = metrics.start_server(port=0, sample_secs=60.0)
        body = scrape(server.port)
        types, samples = parse_exposition(body)  # every line round-trips
        assert "repro_process_rss_bytes" in types  # sampler primed at start
        with pytest.raises(urllib.error.HTTPError):
            scrape(server.port, "/nope")

    def test_scrape_during_live_parallel_map(self):
        """Satellite: scrape mid-run and round-trip-parse every line."""
        server = metrics.start_server(port=0, sample_secs=0.05)
        done = threading.Event()

        def work(i):
            time.sleep(0.01)
            return i * 2

        result = {}

        def run():
            try:
                result["out"] = parallel_map(
                    work, list(range(24)), jobs=4, label="metrics_scrape"
                )
            finally:
                done.set()

        thread = threading.Thread(target=run)
        thread.start()
        bodies = []
        while not done.is_set() and len(bodies) < 50:
            bodies.append(scrape(server.port))
        thread.join(timeout=30)
        bodies.append(scrape(server.port))  # one post-run scrape

        assert result["out"] == [i * 2 for i in range(24)]
        for body in bodies:
            parse_exposition(body)  # typing + histogram invariants, every scrape
        types, samples = parse_exposition(bodies[-1])
        assert types.get("repro_stage_seconds") == "histogram"
        assert types.get("repro_process_threads") == "gauge"
        stage_counts = [
            s for s in samples
            if s.name == "repro_stage_seconds_count"
            and s.labels.get("stage") == "eval.parallel_queue_wait"
        ]
        assert stage_counts and stage_counts[0].value >= 24
        inflight = [s for s in samples if s.name == "repro_parallel_inflight_tasks"]
        assert inflight and inflight[0].value == 0  # drained after the run
