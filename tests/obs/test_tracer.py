"""Tracer tests: nesting, attributes, perf deltas, cross-thread
propagation, exporters, and the disabled-mode fast path."""

import json
import threading

import pytest

from repro import obs, perf
from repro.obs.chrome import to_chrome
from repro.obs.tracer import NOOP_SPAN
from repro.parallel import parallel_map


def read_events(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def spans_of(events):
    return [e for e in events if e.get("type") == "span"]


class TestSpanNesting:
    def test_parent_child_ids(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("outer", a=1) as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        tracer.flush()
        events = spans_of(read_events(tracer.path))
        by_name = {e["name"]: e for e in events}
        # children close first, so inner precedes outer in the log
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["inner"]["trace"] == by_name["outer"]["trace"]
        assert by_name["outer"]["parent"] is None

    def test_sibling_roots_get_distinct_traces(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        tracer.flush()
        events = spans_of(read_events(tracer.path))
        assert events[0]["trace"] != events[1]["trace"]

    def test_attribute_capture(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("op", k=3) as sp:
            sp.set_attribute("hits", 2)
            sp.set_attributes(scores=[0.5, 0.25])
        tracer.flush()
        (record,) = spans_of(read_events(tracer.path))
        assert record["attrs"]["k"] == 3
        assert record["attrs"]["hits"] == 2
        assert record["attrs"]["scores"] == [0.5, 0.25]

    def test_exception_recorded_and_propagates(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with pytest.raises(ValueError, match="boom"):
            with obs.span("fails"):
                raise ValueError("boom")
        tracer.flush()
        (record,) = spans_of(read_events(tracer.path))
        assert record["attrs"]["error"] == "ValueError: boom"

    def test_perf_counter_deltas(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("outer"):
            perf.incr("obs.test.outer", 2)
            with obs.span("inner"):
                perf.incr("obs.test.inner")
        tracer.flush()
        by_name = {e["name"]: e for e in spans_of(read_events(tracer.path))}
        assert by_name["inner"]["attrs"]["perf"] == {"obs.test.inner": 1}
        # the outer span sees its whole subtree's counters
        outer_delta = by_name["outer"]["attrs"]["perf"]
        assert outer_delta["obs.test.outer"] == 2
        assert outer_delta["obs.test.inner"] == 1

    def test_point_events_attach_to_span(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("op") as sp:
            obs.event("milestone", step=4)
        tracer.flush()
        events = read_events(tracer.path)
        (point,) = [e for e in events if e.get("type") == "event"]
        assert point["name"] == "milestone"
        assert point["span"] == sp.span_id
        assert point["attrs"] == {"step": 4}

    def test_current_span(self, tmp_path):
        obs.configure(str(tmp_path / "t.jsonl"))
        assert obs.current_span() is NOOP_SPAN
        with obs.span("op") as sp:
            assert obs.current_span() is sp
        assert obs.current_span() is NOOP_SPAN


class TestCrossThread:
    def test_parallel_map_workers_nest_under_caller(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))

        def work(i):
            with obs.span("worker.op", item=i):
                return i

        with obs.span("harness") as root:
            parallel_map(work, range(6), jobs=3)
        tracer.flush()
        events = spans_of(read_events(tracer.path))
        tasks = [e for e in events if e["name"] == "eval.task"]
        ops = [e for e in events if e["name"] == "worker.op"]
        assert len(tasks) == 6 and len(ops) == 6
        assert all(e["trace"] == root.trace_id for e in tasks + ops)
        assert {e["parent"] for e in tasks} == {root.span_id}
        task_ids = {e["span"] for e in tasks}
        assert all(e["parent"] in task_ids for e in ops)
        # the work really ran on worker threads, not the main thread
        assert any(e["tname"] != threading.current_thread().name for e in ops)

    def test_plain_threads_inherit_nothing(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        done = threading.Event()

        def worker():
            with obs.span("detached"):
                done.set()

        with obs.span("root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.wait(1)
        tracer.flush()
        by_name = {e["name"]: e for e in spans_of(read_events(tracer.path))}
        # a raw Thread has a fresh context: the span is a new root
        assert by_name["detached"]["parent"] is None
        assert by_name["detached"]["trace"] != by_name["root"]["trace"]


class TestDisabledMode:
    def test_span_is_shared_noop(self):
        obs.configure(None)
        assert obs.span("anything", k=1) is NOOP_SPAN
        with obs.span("anything") as sp:
            assert sp is NOOP_SPAN
            sp.set_attribute("a", 1)
            sp.set_attributes(b=2)
        assert not obs.tracing_enabled()

    def test_no_events_no_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        tracer = obs.configure(None)
        with obs.span("op"):
            obs.event("point")
        tracer.flush()
        tracer.shutdown()
        assert tracer.events() == []
        assert list(tmp_path.iterdir()) == []

    def test_env_configuration(self, tmp_path, monkeypatch):
        import repro.obs.tracer as tracer_mod

        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "env.jsonl"))
        monkeypatch.setattr(tracer_mod, "_TRACER", None)
        tracer = obs.get_tracer()
        assert tracer.enabled
        assert tracer.path == str(tmp_path / "env.jsonl")


class TestChromeExport:
    def test_json_path_selects_chrome_format(self, tmp_path):
        path = str(tmp_path / "trace.json")
        tracer = obs.configure(path)
        assert tracer.format == "chrome"
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        tracer.shutdown()
        document = json.load(open(path))
        names = {e["name"] for e in document["traceEvents"]}
        assert {"outer", "inner"}.issubset(names)

    def test_chrome_events_validate(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        tracer.flush()
        events = read_events(tracer.path)
        document = to_chrome(events)
        # round-trips as JSON
        document = json.loads(json.dumps(document))
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        for record in complete:
            assert record["ts"] >= 0
            assert record["dur"] >= 0
        # monotonically consistent: the child lies within the parent
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_thread_metadata_present(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("op"):
            pass
        tracer.flush()
        document = to_chrome(read_events(tracer.path))
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "thread_name" for e in metadata)


class TestShutdown:
    def test_shutdown_appends_perf_snapshot(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        perf.incr("obs.test.shutdown")
        with obs.span("op"):
            pass
        tracer.shutdown()
        events = read_events(tracer.path)
        (snap,) = [e for e in events if e.get("type") == "snapshot"]
        assert snap["perf"]["counters"]["obs.test.shutdown"] >= 1

    def test_meta_header_line(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("op"):
            pass
        tracer.flush()
        first = read_events(tracer.path)[0]
        assert first["type"] == "meta"
        assert first["format"] == "jsonl"

    def test_incremental_jsonl_flushes_append(self, tmp_path):
        tracer = obs.configure(str(tmp_path / "t.jsonl"))
        with obs.span("one"):
            pass
        tracer.flush()
        with obs.span("two"):
            pass
        tracer.flush()
        names = [e["name"] for e in spans_of(read_events(tracer.path))]
        assert names == ["one", "two"]
