"""Tests for the metric-learning losses and trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import GraphData
from repro.mentor import CircuitEncoder
from repro.mentor.metric_learning import (
    MetricTrainer,
    clustering_quality,
    contrastive_loss,
    multi_similarity_loss,
    n_pair_loss,
)


class TestContrastiveLoss:
    def test_same_pair_zero_at_coincidence(self):
        v = np.array([1.0, 2.0])
        loss, ga, gb = contrastive_loss(v, v, same=True)
        assert loss == 0.0
        np.testing.assert_allclose(ga, 0)

    def test_same_pair_pulls_together(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        loss, ga, gb = contrastive_loss(a, b, same=True)
        assert loss > 0
        # gradient step on a moves it toward b
        a2 = a - 0.1 * ga
        assert np.linalg.norm(a2 - b) < np.linalg.norm(a - b)

    def test_diff_pair_pushes_apart_inside_margin(self):
        a = np.array([0.1, 0.0])
        b = np.array([0.0, 0.1])
        loss, ga, gb = contrastive_loss(a, b, same=False, margin=1.0)
        assert loss > 0
        a2 = a - 0.1 * ga
        assert np.linalg.norm(a2 - b) > np.linalg.norm(a - b)

    def test_diff_pair_no_loss_outside_margin(self):
        a = np.array([10.0, 0.0])
        b = np.array([0.0, 10.0])
        loss, ga, gb = contrastive_loss(a, b, same=False, margin=0.5)
        assert loss == 0.0
        np.testing.assert_allclose(ga, 0)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_gradient_matches_finite_difference(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=4)
        b = rng.normal(size=4)
        same = bool(seed % 2)
        loss, ga, _ = contrastive_loss(a, b, same, margin=2.0)
        eps = 1e-6
        for i in range(4):
            ap = a.copy()
            ap[i] += eps
            up, _, _ = contrastive_loss(ap, b, same, margin=2.0)
            ap[i] -= 2 * eps
            down, _, _ = contrastive_loss(ap, b, same, margin=2.0)
            numeric = (up - down) / (2 * eps)
            assert ga[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestMultiSimilarityLoss:
    def test_separable_batch_low_loss(self):
        emb = np.array([[1.0, 0.0], [0.99, 0.01], [0.0, 1.0], [0.01, 0.99]])
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        labels = np.array([0, 0, 1, 1])
        loss_good, _ = multi_similarity_loss(emb, labels)
        loss_bad, _ = multi_similarity_loss(emb, np.array([0, 1, 0, 1]))
        assert loss_good < loss_bad

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(4, 3))
        labels = np.array([0, 0, 1, 1])
        loss, grad = multi_similarity_loss(emb, labels)
        eps = 1e-6
        for i in (0, 2):
            for j in (0, 1):
                emb[i, j] += eps
                up, _ = multi_similarity_loss(emb, labels)
                emb[i, j] -= 2 * eps
                down, _ = multi_similarity_loss(emb, labels)
                emb[i, j] += eps
                numeric = (up - down) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestNPairLoss:
    def test_correct_ordering_low_loss(self):
        anchor = np.array([1.0, 0.0])
        positive = np.array([0.98, 0.02])
        negatives = np.array([[0.0, 1.0], [-1.0, 0.0]])
        good, *_ = n_pair_loss(anchor, positive, negatives)
        bad, *_ = n_pair_loss(anchor, negatives[0], np.array([positive, negatives[1]]))
        assert good < bad

    def test_gradient_direction(self):
        anchor = np.array([0.5, 0.5])
        positive = np.array([0.0, 1.0])
        negatives = np.array([[1.0, 0.0]])
        loss, ga, gp, gn = n_pair_loss(anchor, positive, negatives)
        anchor2 = anchor - 0.1 * ga
        loss2, *_ = n_pair_loss(anchor2, positive, negatives)
        assert loss2 < loss


class TestClusteringQuality:
    def test_perfectly_clustered(self):
        emb = np.array([[1, 0], [1, 0.01], [0, 1], [0.01, 1]], dtype=float)
        quality = clustering_quality(emb, np.array([0, 0, 1, 1]))
        assert quality["separated"]
        assert quality["intra_mean"] < quality["inter_mean"]

    def test_anti_clustered(self):
        emb = np.array([[1, 0], [0, 1], [1, 0.01], [0.01, 1]], dtype=float)
        quality = clustering_quality(emb, np.array([0, 0, 1, 1]))
        assert not quality["separated"]


class TestTrainer:
    def make_dataset(self, seed=0):
        """Two families of small graphs with distinct feature signatures."""
        rng = np.random.default_rng(seed)
        graphs, labels = [], []
        from repro.mentor.features import FEATURE_DIM

        for label in (0, 1):
            for _ in range(4):
                base = np.zeros(FEATURE_DIM)
                base[7 if label == 0 else 10] = 2.0  # add-census vs xor-census
                feats = base + rng.normal(scale=0.1, size=(3, FEATURE_DIM))
                graphs.append(GraphData(features=feats, edges=[(0, 1), (1, 2)]))
                labels.append(label)
        return graphs, labels

    def test_training_improves_separation(self):
        graphs, labels = self.make_dataset()
        encoder = CircuitEncoder(embedding_dim=8, seed=1)

        def quality():
            emb = np.vstack([encoder.model.embed_graph(g) for g in graphs])
            emb /= np.maximum(np.linalg.norm(emb, axis=1, keepdims=True), 1e-12)
            return clustering_quality(emb, np.array(labels))["ratio"]

        before = quality()
        MetricTrainer(encoder, lr=5e-3, seed=0).train(graphs, labels, epochs=30)
        after = quality()
        assert after < before

    def test_multi_similarity_training_runs(self):
        graphs, labels = self.make_dataset(seed=2)
        encoder = CircuitEncoder(embedding_dim=8, seed=2)
        stats = MetricTrainer(encoder, loss="multi_similarity", seed=1).train(
            graphs, labels, epochs=5
        )
        assert len(stats.losses) == 5
        assert all(np.isfinite(l) for l in stats.losses)

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            MetricTrainer(CircuitEncoder(), loss="triplet-magic")
