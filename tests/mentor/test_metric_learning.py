"""Tests for the metric-learning losses and trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import GraphData
from repro.mentor import CircuitEncoder
from repro.mentor.metric_learning import (
    MetricTrainer,
    clustering_quality,
    contrastive_loss,
    multi_similarity_loss,
    n_pair_loss,
)


class TestContrastiveLoss:
    def test_same_pair_zero_at_coincidence(self):
        v = np.array([1.0, 2.0])
        loss, ga, gb = contrastive_loss(v, v, same=True)
        assert loss == 0.0
        np.testing.assert_allclose(ga, 0)

    def test_same_pair_pulls_together(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        loss, ga, gb = contrastive_loss(a, b, same=True)
        assert loss > 0
        # gradient step on a moves it toward b
        a2 = a - 0.1 * ga
        assert np.linalg.norm(a2 - b) < np.linalg.norm(a - b)

    def test_diff_pair_pushes_apart_inside_margin(self):
        a = np.array([0.1, 0.0])
        b = np.array([0.0, 0.1])
        loss, ga, gb = contrastive_loss(a, b, same=False, margin=1.0)
        assert loss > 0
        a2 = a - 0.1 * ga
        assert np.linalg.norm(a2 - b) > np.linalg.norm(a - b)

    def test_diff_pair_no_loss_outside_margin(self):
        a = np.array([10.0, 0.0])
        b = np.array([0.0, 10.0])
        loss, ga, gb = contrastive_loss(a, b, same=False, margin=0.5)
        assert loss == 0.0
        np.testing.assert_allclose(ga, 0)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_gradient_matches_finite_difference(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=4)
        b = rng.normal(size=4)
        same = bool(seed % 2)
        loss, ga, _ = contrastive_loss(a, b, same, margin=2.0)
        eps = 1e-6
        for i in range(4):
            ap = a.copy()
            ap[i] += eps
            up, _, _ = contrastive_loss(ap, b, same, margin=2.0)
            ap[i] -= 2 * eps
            down, _, _ = contrastive_loss(ap, b, same, margin=2.0)
            numeric = (up - down) / (2 * eps)
            assert ga[i] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestMultiSimilarityLoss:
    def test_separable_batch_low_loss(self):
        emb = np.array([[1.0, 0.0], [0.99, 0.01], [0.0, 1.0], [0.01, 0.99]])
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        labels = np.array([0, 0, 1, 1])
        loss_good, _ = multi_similarity_loss(emb, labels)
        loss_bad, _ = multi_similarity_loss(emb, np.array([0, 1, 0, 1]))
        assert loss_good < loss_bad

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(4, 3))
        labels = np.array([0, 0, 1, 1])
        loss, grad = multi_similarity_loss(emb, labels)
        eps = 1e-6
        for i in (0, 2):
            for j in (0, 1):
                emb[i, j] += eps
                up, _ = multi_similarity_loss(emb, labels)
                emb[i, j] -= 2 * eps
                down, _ = multi_similarity_loss(emb, labels)
                emb[i, j] += eps
                numeric = (up - down) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestNPairLoss:
    def test_correct_ordering_low_loss(self):
        anchor = np.array([1.0, 0.0])
        positive = np.array([0.98, 0.02])
        negatives = np.array([[0.0, 1.0], [-1.0, 0.0]])
        good, *_ = n_pair_loss(anchor, positive, negatives)
        bad, *_ = n_pair_loss(anchor, negatives[0], np.array([positive, negatives[1]]))
        assert good < bad

    def test_gradient_direction(self):
        anchor = np.array([0.5, 0.5])
        positive = np.array([0.0, 1.0])
        negatives = np.array([[1.0, 0.0]])
        loss, ga, gp, gn = n_pair_loss(anchor, positive, negatives)
        anchor2 = anchor - 0.1 * ga
        loss2, *_ = n_pair_loss(anchor2, positive, negatives)
        assert loss2 < loss


class TestClusteringQuality:
    def test_perfectly_clustered(self):
        emb = np.array([[1, 0], [1, 0.01], [0, 1], [0.01, 1]], dtype=float)
        quality = clustering_quality(emb, np.array([0, 0, 1, 1]))
        assert quality["separated"]
        assert quality["intra_mean"] < quality["inter_mean"]

    def test_anti_clustered(self):
        emb = np.array([[1, 0], [0, 1], [1, 0.01], [0.01, 1]], dtype=float)
        quality = clustering_quality(emb, np.array([0, 0, 1, 1]))
        assert not quality["separated"]


class TestTrainer:
    def make_dataset(self, seed=0):
        """Two families of small graphs with distinct feature signatures."""
        rng = np.random.default_rng(seed)
        graphs, labels = [], []
        from repro.mentor.features import FEATURE_DIM

        for label in (0, 1):
            for _ in range(4):
                base = np.zeros(FEATURE_DIM)
                base[7 if label == 0 else 10] = 2.0  # add-census vs xor-census
                feats = base + rng.normal(scale=0.1, size=(3, FEATURE_DIM))
                graphs.append(GraphData(features=feats, edges=[(0, 1), (1, 2)]))
                labels.append(label)
        return graphs, labels

    def test_training_improves_separation(self):
        graphs, labels = self.make_dataset()
        encoder = CircuitEncoder(embedding_dim=8, seed=1)

        def quality():
            emb = np.vstack([encoder.model.embed_graph(g) for g in graphs])
            emb /= np.maximum(np.linalg.norm(emb, axis=1, keepdims=True), 1e-12)
            return clustering_quality(emb, np.array(labels))["ratio"]

        before = quality()
        MetricTrainer(encoder, lr=5e-3, seed=0).train(graphs, labels, epochs=30)
        after = quality()
        assert after < before

    def test_multi_similarity_training_runs(self):
        graphs, labels = self.make_dataset(seed=2)
        encoder = CircuitEncoder(embedding_dim=8, seed=2)
        stats = MetricTrainer(encoder, loss="multi_similarity", seed=1).train(
            graphs, labels, epochs=5
        )
        assert len(stats.losses) == 5
        assert all(np.isfinite(l) for l in stats.losses)

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            MetricTrainer(CircuitEncoder(), loss="triplet-magic")


class TestVectorizedLossOracle:
    """Vectorized multi-similarity loss must match the O(n^2) reference."""

    @given(st.integers(0, 1000), st.integers(3, 10))
    @settings(max_examples=25, deadline=None)
    def test_matches_loop_reference(self, seed, n):
        from repro.mentor.metric_learning import _multi_similarity_loss_loop

        rng = np.random.default_rng(seed)
        emb = rng.normal(size=(n, 4))
        emb /= np.linalg.norm(emb, axis=1, keepdims=True)
        labels = rng.integers(0, 3, size=n)
        loss_vec, grad_vec = multi_similarity_loss(emb, labels)
        loss_ref, grad_ref = _multi_similarity_loss_loop(emb, labels)
        assert loss_vec == pytest.approx(loss_ref, rel=1e-12, abs=1e-12)
        np.testing.assert_allclose(grad_vec, grad_ref, rtol=1e-12, atol=1e-12)

    def test_single_class_batch(self):
        from repro.mentor.metric_learning import _multi_similarity_loss_loop

        emb = np.random.default_rng(1).normal(size=(4, 3))
        labels = np.zeros(4, dtype=int)
        loss_vec, grad_vec = multi_similarity_loss(emb, labels)
        loss_ref, grad_ref = _multi_similarity_loss_loop(emb, labels)
        assert loss_vec == pytest.approx(loss_ref, rel=1e-12, abs=1e-12)
        np.testing.assert_allclose(grad_vec, grad_ref, rtol=1e-12, atol=1e-12)

    @given(st.integers(0, 500), st.integers(4, 12))
    @settings(max_examples=15, deadline=None)
    def test_clustering_quality_matches_pairwise_definition(self, seed, n):
        rng = np.random.default_rng(seed)
        emb = rng.normal(size=(n, 3))
        labels = rng.integers(0, 3, size=n)
        got = clustering_quality(emb, labels)
        intra, inter = [], []
        for i in range(n):
            for j in range(i + 1, n):
                dist = float(np.linalg.norm(emb[i] - emb[j]))
                (intra if labels[i] == labels[j] else inter).append(dist)
        if intra and inter:
            assert got["intra_mean"] == pytest.approx(np.mean(intra), rel=1e-12)
            assert got["inter_mean"] == pytest.approx(np.mean(inter), rel=1e-12)


class TestCrossModeDeterminism:
    """Satellite: same seed + graphs -> identical training in both engine
    modes (REPRO_BATCH_GNN=1 batched vs =0 scalar)."""

    def _train(self, monkeypatch, mode, loss, seed=3):
        monkeypatch.setenv("REPRO_BATCH_GNN", mode)
        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
        graphs, labels = TestTrainer().make_dataset(seed=seed)
        encoder = CircuitEncoder(embedding_dim=8, seed=seed)
        stats = MetricTrainer(encoder, loss=loss, seed=seed).train(
            graphs, labels, epochs=4
        )
        final = np.vstack([encoder.model.embed_graph(g) for g in graphs])
        return stats, final

    @pytest.mark.parametrize("loss", ["contrastive", "multi_similarity"])
    def test_identical_stats_and_embeddings(self, monkeypatch, loss):
        stats_b, emb_b = self._train(monkeypatch, "1", loss)
        stats_s, emb_s = self._train(monkeypatch, "0", loss)
        assert stats_b.losses == stats_s.losses
        np.testing.assert_array_equal(emb_b, emb_s)

    def test_repeat_run_is_deterministic(self, monkeypatch):
        stats1, emb1 = self._train(monkeypatch, "1", "multi_similarity", seed=7)
        stats2, emb2 = self._train(monkeypatch, "1", "multi_similarity", seed=7)
        assert stats1.losses == stats2.losses
        np.testing.assert_array_equal(emb1, emb2)
