"""Tests for CircuitMentor's graph construction and embeddings."""

import numpy as np
import pytest

from repro.graphdb import execute
from repro.mentor import CircuitEncoder, build_circuit_graph

HIER_SRC = """
module leaf(input [3:0] a, output [3:0] y);
  assign y = a + 4'd1;
endmodule

module mid(input [3:0] a, output [3:0] y);
  wire [3:0] t;
  leaf u1 (.a(a), .y(t));
  leaf u2 (.a(t), .y(y));
endmodule

module top(input clk, input [3:0] d, output reg [3:0] q);
  wire [3:0] m;
  mid u (.a(d), .y(m));
  always @(posedge clk) q <= m;
endmodule
"""


@pytest.fixture
def circuit():
    return build_circuit_graph(HIER_SRC, "testchip", top="top")


class TestPropertyGraph:
    def test_design_node_created(self, circuit):
        rows = execute(circuit.store, "MATCH (d:Design) RETURN d.name AS name")
        assert rows == [{"name": "testchip"}]

    def test_module_nodes_with_code(self, circuit):
        rows = execute(
            circuit.store, "MATCH (m:Module) RETURN m.name AS name, m.code AS code"
        )
        names = {r["name"] for r in rows}
        assert names == {"leaf", "mid", "top"}
        for row in rows:
            assert f"module {row['name']}" in row["code"]

    def test_contains_edges(self, circuit):
        rows = execute(
            circuit.store,
            "MATCH (d:Design)-[:CONTAINS]->(m:Module) RETURN count(*) AS n",
        )
        assert rows[0]["n"] == 3

    def test_instantiates_edges(self, circuit):
        rows = execute(
            circuit.store,
            "MATCH (a:Module)-[:INSTANTIATES]->(b:Module) "
            "RETURN a.name AS parent, b.name AS child",
        )
        pairs = {(r["parent"], r["child"]) for r in rows}
        assert ("top", "mid") in pairs
        assert ("mid", "leaf") in pairs

    def test_top_flag(self, circuit):
        rows = execute(
            circuit.store,
            "MATCH (m:Module) WHERE m.is_top = true RETURN m.name AS name",
        )
        assert [r["name"] for r in rows] == ["top"]

    def test_component_nodes(self, circuit):
        rows = execute(
            circuit.store,
            "MATCH (m:Module {name: 'top'})-[:HAS]->(c:Component) "
            "RETURN c.kind AS kind",
        )
        kinds = [r["kind"] for r in rows]
        assert "always_seq" in kinds

    def test_category_property(self, circuit):
        rows = execute(
            circuit.store,
            "MATCH (m:Module {name: 'leaf'}) RETURN m.category AS cat",
        )
        assert rows[0]["cat"] in ("arithmetic", "mixed")


class TestModuleGraphs:
    def test_one_graph_per_module(self, circuit):
        assert set(circuit.module_graphs) == {"leaf", "mid", "top"}

    def test_dataflow_edges_follow_def_use(self, circuit):
        graph = circuit.module_graphs["leaf"]
        graph.validate()
        # input port defines 'a', assign uses it: at least one edge.
        assert graph.edges

    def test_design_graph_structure(self, circuit):
        dg = circuit.design_graph()
        assert dg.num_nodes == 3
        assert dg.edges  # instantiation edges present
        dg.validate()


class TestEncoderIntegration:
    def test_module_embeddings_normalized(self, circuit):
        encoder = CircuitEncoder(embedding_dim=16)
        for name, emb in encoder.embed_modules(circuit).items():
            assert emb.shape == (16,)
            assert np.linalg.norm(emb) == pytest.approx(1.0, abs=1e-9)

    def test_design_embedding_deterministic(self, circuit):
        a = CircuitEncoder(seed=3).embed_design(circuit)
        b = CircuitEncoder(seed=3).embed_design(circuit)
        np.testing.assert_allclose(a, b)

    def test_different_designs_differ(self):
        encoder = CircuitEncoder()
        c1 = build_circuit_graph(HIER_SRC, "a", top="top")
        other = """
        module top(input [7:0] x, output [7:0] y);
          assign y = x ^ {x[3:0], x[7:4]};
        endmodule
        """
        c2 = build_circuit_graph(other, "b", top="top")
        e1 = encoder.embed_design(c1)
        e2 = encoder.embed_design(c2)
        assert float(e1 @ e2) < 0.999
