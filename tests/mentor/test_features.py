"""Tests for AST feature extraction and module classification."""

import numpy as np
import pytest

from repro.hdl.parser import parse_source
from repro.mentor.features import (
    FEATURE_DIM,
    classify_module,
    component_features,
    count_ops,
    expr_signals,
    module_profile,
)


def first_module(src):
    return parse_source(src).modules[0]


class TestOpCounting:
    def test_counts_arithmetic(self):
        mod = first_module(
            "module m(input [7:0] a, b, output [7:0] y); assign y = a * b + a - b; endmodule"
        )
        ops = count_ops(mod.assigns[0].value)
        assert ops.mul == 1
        assert ops.add == 2  # + and -

    def test_counts_mux_in_statements(self):
        mod = first_module(
            """
            module m(input s, a, b, output reg y);
            always @(*) begin
              if (s) y = a;
              else y = b;
            end
            endmodule
            """
        )
        ops = count_ops(mod.always_blocks[0].body)
        assert ops.mux >= 1

    def test_counts_case_branches(self):
        mod = first_module(
            """
            module m(input [1:0] s, output reg y);
            always @(*) case (s)
              2'd0: y = 1'b0;
              2'd1: y = 1'b1;
              default: y = 1'b0;
            endcase
            endmodule
            """
        )
        ops = count_ops(mod.always_blocks[0].body)
        assert ops.mux == 2  # items - 1

    def test_xor_and_reductions(self):
        mod = first_module(
            "module m(input [7:0] a, output y); assign y = ^a ^ a[0]; endmodule"
        )
        ops = count_ops(mod.assigns[0].value)
        assert ops.xor == 2


class TestSignalExtraction:
    def test_expr_signals(self):
        mod = first_module(
            "module m(input a, b, c, output y); assign y = a ? b : c; endmodule"
        )
        assert expr_signals(mod.assigns[0].value) == {"a", "b", "c"}

    def test_statement_signals(self):
        mod = first_module(
            """
            module m(input clk, d, output reg q);
            always @(posedge clk) q <= d;
            endmodule
            """
        )
        stmt = mod.always_blocks[0].body[0]
        assert expr_signals(stmt.value) == {"d"}
        assert expr_signals(stmt.target) == {"q"}


class TestComponentFeatures:
    def test_shape_and_kind_one_hot(self):
        from repro.mentor.features import OpCounts

        vec = component_features("assign", 16, OpCounts(add=2))
        assert vec.shape == (FEATURE_DIM,)
        assert vec[2] == 1.0  # assign slot
        assert vec[7] > 0  # add census

    def test_unknown_kind_no_one_hot(self):
        from repro.mentor.features import OpCounts

        vec = component_features("mystery", 8, OpCounts())
        assert np.all(vec[:6] == 0)


class TestClassification:
    def classify(self, src):
        return module_profile(first_module(src)).category

    def test_arithmetic_module(self):
        assert self.classify(
            "module m(input [7:0] a, b, output [15:0] y); assign y = a * b + a; endmodule"
        ) == "arithmetic"

    def test_memory_module(self):
        assert self.classify(
            "module m(input clk, input [3:0] a, output [7:0] q); "
            "reg [7:0] mem [0:15]; assign q = mem[a]; endmodule"
        ) == "memory"

    def test_crypto_module(self):
        src = """
        module m(input [7:0] x, output [7:0] y);
          assign y[0] = x[0] ^ x[3] ^ x[5];
          assign y[1] = x[1] ^ x[4] ^ x[6];
          assign y[2] = x[2] ^ x[5] ^ x[7];
          assign y[3] = x[3] ^ x[6] ^ x[0];
          assign y[7:4] = x[7:4];
        endmodule
        """
        assert self.classify(src) == "crypto"

    def test_control_module(self):
        src = """
        module m(input [2:0] s, input a, b, output reg y);
        always @(*) begin
          case (s)
            3'd0: y = a & b;
            3'd1: y = a | b;
            3'd2: y = !a;
            default: y = b;
          endcase
        end
        endmodule
        """
        assert self.classify(src) == "control"

    def test_profile_counts(self):
        mod = first_module(
            """
            module m(input clk, input [7:0] d, output reg [7:0] q);
            wire [7:0] w;
            assign w = d + 8'd1;
            always @(posedge clk) q <= w;
            endmodule
            """
        )
        profile = module_profile(mod)
        assert profile.num_assigns == 1
        assert profile.num_always_seq == 1
        assert profile.num_always_comb == 0
        assert profile.max_width == 8

    def test_parameterized_widths(self):
        mod = first_module(
            "module m #(parameter W = 32)(input [W-1:0] a, output [W-1:0] y); "
            "assign y = a; endmodule"
        )
        profile = module_profile(mod)
        assert profile.max_width == 32
