"""Tests for the design analyzer (pathology detection)."""

import pytest

from repro.designs.generators import gen_imbalanced_pipeline
from repro.designs.opencores import get_benchmark
from repro.mentor import analyze_design


class TestPathologyDetection:
    def test_retiming_target_flagged(self):
        src = gen_imbalanced_pipeline("imb", width=8, heavy_ops=2)
        analysis = analyze_design(src, "imb", clock_period=1.0)
        assert "register_imbalance" in analysis.pathologies
        assert analysis.register_stage_imbalance > 0.5

    def test_high_fanout_flagged(self):
        src = """
        module hf(input sel, input [63:0] a, b, output [63:0] y);
          assign y = sel ? a : b;
        endmodule
        """
        analysis = analyze_design(src, "hf", clock_period=2.0)
        assert "high_fanout" in analysis.pathologies
        assert analysis.max_fanout >= 64

    def test_unbalanced_chain_flagged(self):
        src = """
        module chain(input [15:0] a, output y);
          assign y = a[0] ^ a[1] ^ a[2] ^ a[3] ^ a[4] ^ a[5] ^ a[6] ^ a[7]
                   ^ a[8] ^ a[9] ^ a[10] ^ a[11] ^ a[12] ^ a[13] ^ a[14] ^ a[15];
        endmodule
        """
        analysis = analyze_design(src, "chain", clock_period=2.0)
        assert "unbalanced_chains" in analysis.pathologies
        assert analysis.longest_chain >= 8

    def test_balanced_design_clean(self):
        src = "module ok(input a, b, output y); assign y = a & b; endmodule"
        analysis = analyze_design(src, "ok", clock_period=10.0)
        assert "timing_violated" not in analysis.pathologies
        assert "register_imbalance" not in analysis.pathologies
        assert "unbalanced_chains" not in analysis.pathologies

    def test_timing_violation_flag_depends_on_period(self):
        src = gen_imbalanced_pipeline("imb2", width=8, heavy_ops=2)
        tight = analyze_design(src, "imb2", clock_period=0.5)
        loose = analyze_design(src, "imb2", clock_period=50.0)
        assert "timing_violated" in tight.pathologies
        assert "timing_violated" not in loose.pathologies

    def test_wide_arithmetic_flag(self):
        src = """
        module arith(input [15:0] a, b, output [15:0] s, t);
          assign s = a + b;
          assign t = a - b;
        endmodule
        """
        analysis = analyze_design(src, "arith", clock_period=2.0)
        assert "wide_arithmetic" in analysis.pathologies
        assert analysis.tagged_adders >= 2


class TestAnalysisContent:
    def test_benchmark_pathologies_match_design_intent(self):
        bench = get_benchmark("tinyRocket")
        analysis = analyze_design(
            bench.verilog, bench.name, top=bench.top, clock_period=bench.clock_period
        )
        assert "register_imbalance" in analysis.pathologies

    def test_critical_modules_identified(self):
        bench = get_benchmark("aes")
        analysis = analyze_design(
            bench.verilog, bench.name, top=bench.top, clock_period=bench.clock_period
        )
        # aes's critical path runs through the sbox/mix instances.
        assert analysis.critical_modules

    def test_summary_renders_key_fields(self):
        bench = get_benchmark("jpeg")
        analysis = analyze_design(
            bench.verilog, bench.name, top=bench.top, clock_period=bench.clock_period
        )
        text = analysis.summary()
        assert "detected pathologies" in text
        assert "WNS=" in text
        assert analysis.dominant_category in text

    def test_category_mix_counts_modules(self):
        bench = get_benchmark("riscv32i")
        analysis = analyze_design(
            bench.verilog, bench.name, top=bench.top, clock_period=bench.clock_period
        )
        assert sum(analysis.category_mix.values()) == len(
            analysis.circuit.module_graphs
        )

    def test_hierarchy_buffers_counted(self):
        bench = get_benchmark("aes")
        analysis = analyze_design(
            bench.verilog, bench.name, top=bench.top, clock_period=bench.clock_period
        )
        assert analysis.hierarchy_buffers > 0
