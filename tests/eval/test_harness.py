"""Tests for the experiment harness (small-scale runs)."""

import pytest

from repro.designs.database import build_default_database
from repro.eval.harness import (
    baseline_script,
    run_fig4_metric_learning,
    run_table3_customization,
    run_table4_baseline,
)


class TestTable4Harness:
    def test_subset_run(self):
        result = run_table4_baseline(designs=["riscv32i"])
        assert "riscv32i" in result.rows
        assert result.rows["riscv32i"].wns == 0.0
        assert "report_qor" not in result.reports["riscv32i"]  # text, not cmd
        assert "Critical Path Slack" in result.reports["riscv32i"]

    def test_render_contains_title(self):
        result = run_table4_baseline(designs=["dynamic_node"])
        assert "TABLE IV" in result.render()

    def test_baseline_script_structure(self):
        from repro.designs.opencores import get_benchmark

        bench = get_benchmark("aes")
        script = baseline_script(bench)
        lines = script.splitlines()
        assert lines[0] == "read_verilog aes"
        assert any(
            f"create_clock -period {bench.clock_period}" in l for l in lines
        )
        assert "compile" in lines


class TestTable3Harness:
    @pytest.fixture(scope="class")
    def small_result(self):
        db = build_default_database(
            variants_per_family=1,
            strategies=["baseline_compile", "ultra_retime"],
        )
        return run_table3_customization(
            database=db, designs=["dynamic_node"], k=2
        )

    def test_three_models_present(self, small_result):
        assert set(small_result.models) == {"GPT-4o", "Claude-3.5", "ChatLS"}

    def test_all_models_have_design_row(self, small_result):
        for model, rows in small_result.models.items():
            assert "dynamic_node" in rows, model

    def test_render(self, small_result):
        text = small_result.render()
        assert "TABLE III" in text
        assert "dynamic_node" in text


class TestFig4Harness:
    def test_small_run_separates(self):
        result = run_fig4_metric_learning(variants_per_family=2, epochs=10)
        assert result.after["ratio"] <= result.before["ratio"]
        assert len(result.losses) == 10

    def test_render(self):
        result = run_fig4_metric_learning(variants_per_family=2, epochs=3)
        assert "FIG 4" in result.render()
