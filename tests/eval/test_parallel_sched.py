"""Tests for the work-stealing scheduler (repro.parallel.sched)."""

import pytest

from repro.parallel.sched import WorkStealingScheduler


def drain(sched: WorkStealingScheduler, worker: int) -> list[int]:
    out = []
    while (index := sched.next_task(worker)) is not None:
        out.append(index)
    return out


class TestAssignment:
    def test_needs_a_worker(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler([1.0], workers=0)

    def test_every_task_dispatched_exactly_once(self):
        sched = WorkStealingScheduler([1.0] * 20, workers=3)
        seen = []
        # round-robin pulls, as the pool does when every task is instant
        active = True
        while active:
            active = False
            for worker in range(3):
                index = sched.next_task(worker)
                if index is not None:
                    seen.append(index)
                    active = True
        assert sorted(seen) == list(range(20))
        assert sched.remaining() == 0

    def test_lpt_balances_uneven_costs(self):
        # one huge design + many small ones: LPT puts the huge one alone
        costs = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        sched = WorkStealingScheduler(costs, workers=2)
        assert sorted(sched.initial_loads) == [6.0, 100.0]
        light = min(range(2), key=lambda w: sched.initial_loads[w])
        assert len(sched.queues[light]) == 6

    def test_queues_are_cost_descending(self):
        costs = [3.0, 9.0, 1.0, 7.0, 5.0, 2.0]
        sched = WorkStealingScheduler(costs, workers=2)
        for queue in sched.queues:
            order = [costs[i] for i in queue]
            assert order == sorted(order, reverse=True)

    def test_deterministic_tie_break(self):
        a = WorkStealingScheduler([2.0] * 8, workers=3)
        b = WorkStealingScheduler([2.0] * 8, workers=3)
        assert [list(q) for q in a.queues] == [list(q) for q in b.queues]


class TestStealing:
    def test_idle_worker_steals_half_the_tail(self):
        sched = WorkStealingScheduler([1.0] * 8, workers=2)
        # worker 1 never shows up; worker 0 drains its own queue...
        own = len(sched.queues[0])
        for _ in range(own):
            assert sched.next_task(0) is not None
        assert not sched.queues[0]
        victim_before = len(sched.queues[1])
        # ...then steals from worker 1's tail instead of going idle
        index = sched.next_task(0)
        assert index is not None
        assert sched.steals[0] == 1
        assert sched.stolen_tasks[0] == (victim_before + 1) // 2
        assert len(sched.queues[1]) == victim_before - (victim_before + 1) // 2

    def test_steal_preserves_completeness(self):
        costs = [float(c) for c in (9, 1, 8, 2, 7, 3, 6, 4, 5)]
        sched = WorkStealingScheduler(costs, workers=3)
        # pathological schedule: worker 0 does everything
        seen = drain(sched, 0)
        assert sorted(seen) == list(range(9))

    def test_stolen_tail_is_cheap_end(self):
        costs = [10.0, 9.0, 1.0, 1.0]
        sched = WorkStealingScheduler(costs, workers=2)
        # force worker 0 dry, then steal: the lifted tasks come from the
        # victim's cheap tail, so the victim keeps its expensive head
        for _ in range(len(sched.queues[0])):
            sched.next_task(0)
        victim = 1
        head_before = sched.queues[victim][0]
        sched.next_task(0)
        assert sched.queues[victim] and sched.queues[victim][0] == head_before

    def test_exhausted_returns_none(self):
        sched = WorkStealingScheduler([1.0, 1.0], workers=2)
        drain(sched, 0)
        drain(sched, 1)
        assert sched.next_task(0) is None
        assert sched.next_task(1) is None

    def test_single_worker_never_steals(self):
        sched = WorkStealingScheduler([1.0] * 5, workers=1)
        assert drain(sched, 0) == [0, 1, 2, 3, 4]
        assert sched.steals == [0]


class TestStats:
    def test_stats_shape(self):
        sched = WorkStealingScheduler([2.0, 1.0, 3.0], workers=2)
        drain(sched, 0)
        stats = sched.stats()
        assert stats["workers"] == 2
        assert stats["tasks"] == 3
        assert sum(stats["dispatched"]) == 3
        assert len(stats["initial_loads"]) == 2
