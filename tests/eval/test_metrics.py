"""Tests for evaluation metrics and table rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import mean_f1, pass_at_k, precision_recall_f1
from repro.eval.tables import render_series, render_table


class TestPrecisionRecallF1:
    def test_perfect_retrieval(self):
        score = precision_recall_f1(["a", "b"], {"a", "b"})
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_total_miss(self):
        score = precision_recall_f1(["x", "y"], {"a", "b"})
        assert score.f1 == 0.0

    def test_half_right(self):
        score = precision_recall_f1(["a", "x"], {"a", "b"})
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_k_truncation(self):
        score = precision_recall_f1(["a", "x", "b"], {"a", "b"}, k=1)
        assert score.precision == 1.0

    def test_recall_capped_by_k(self):
        # 1 of 5 relevant retrieved at k=1 should count as full recall@1.
        score = precision_recall_f1(["a"], {"a", "b", "c", "d", "e"}, k=1)
        assert score.recall == 1.0

    def test_empty_retrieval(self):
        score = precision_recall_f1([], {"a"})
        assert score.f1 == 0.0

    @given(
        st.lists(st.sampled_from("abcdef"), max_size=6, unique=True),
        st.sets(st.sampled_from("abcdef"), max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, retrieved, relevant):
        score = precision_recall_f1(retrieved, relevant)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.f1 <= 1.0

    def test_mean_f1(self):
        scores = [
            precision_recall_f1(["a"], {"a"}),
            precision_recall_f1(["x"], {"a"}),
        ]
        assert mean_f1(scores) == pytest.approx(0.5)

    def test_mean_f1_empty(self):
        assert mean_f1([]) == 0.0


class TestPassAtK:
    def test_any_success(self):
        assert pass_at_k([False, True, False])

    def test_all_fail(self):
        assert not pass_at_k([False, False])


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["A", "Bee"], [["x", 1.5], ["long", 2.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text
        assert "2.25" in text

    def test_series(self):
        text = render_series("f1", [(1, 0.9), (2, 0.85)])
        assert "1: 0.900" in text
        assert "2: 0.850" in text
