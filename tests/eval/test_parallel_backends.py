"""Backend-parity contract tests for parallel_map (thread vs process).

One warm pool (2 workers) is shared by the whole module — pools persist
between maps by design, so these tests exercise reuse as well.  Task
functions must live at module level: the process backend ships them by
qualified name.
"""

import os
import pickle

import numpy as np
import pytest

from repro import perf
from repro.parallel import (
    DEFAULT_MAX_JOBS,
    effective_backend,
    in_worker,
    parallel_map,
    resolve_backend,
    resolve_jobs,
    sync_worker_perf,
)


class Boom(RuntimeError):
    pass


def _square(x: int) -> int:
    return x * x


def _boom_on_multiples_of_three(x: int) -> int:
    if x and x % 3 == 0:
        raise Boom(f"bad input {x}")
    return x


def _checksum(arr: np.ndarray) -> float:
    return float(arr.sum())


def _worker_pid(_x) -> int:
    return os.getpid()


def _in_worker_flag(_x) -> bool:
    return in_worker()


pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


class TestBackendResolution:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
        assert resolve_backend() == "thread"

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert resolve_backend() == "process"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "process")
        assert resolve_backend("thread") == "thread"

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_BACKEND", "fibers")
        with pytest.raises(ValueError, match="fibers"):
            resolve_backend()

    def test_worker_processes_resolve_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKER", "1")
        assert resolve_backend("process") == "thread"

    def test_jobs_cap_is_thread_only(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL_BACKEND", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 32)
        assert resolve_jobs(backend="thread") == DEFAULT_MAX_JOBS
        assert resolve_jobs(backend="process") == 32

    def test_nested_default_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKER", "1")
        monkeypatch.setenv("REPRO_JOBS", "6")  # parent export is ignored
        assert resolve_jobs() == 1
        assert resolve_jobs(4) == 4  # explicit argument still wins

    def test_effective_backend_predicts_serial(self):
        assert effective_backend(jobs=1, items=10, backend="process") == "serial"
        assert effective_backend(jobs=4, items=1, backend="process") == "serial"
        assert effective_backend(jobs=4, items=10, backend="process") == "process"
        assert effective_backend(jobs=4, items=10, backend="thread") == "thread"


class TestProcessBackendContract:
    def test_preserves_input_order(self):
        result = parallel_map(_square, range(20), jobs=2, backend="process")
        assert result == [x * x for x in range(20)]

    def test_matches_thread_backend_bit_for_bit(self):
        items = list(range(16))
        via_process = parallel_map(_square, items, jobs=2, backend="process")
        via_thread = parallel_map(_square, items, jobs=2, backend="thread")
        assert pickle.dumps(via_process) == pickle.dumps(via_thread)

    def test_lowest_failing_index_raises(self):
        with pytest.raises(Boom, match="bad input 3"):
            parallel_map(
                _boom_on_multiples_of_three, range(10), jobs=2, backend="process"
            )

    def test_exception_type_survives_the_pipe(self):
        try:
            parallel_map(
                _boom_on_multiples_of_three, [1, 3], jobs=2, backend="process"
            )
        except Boom as exc:
            assert exc.args == ("bad input 3",)
        else:
            pytest.fail("expected Boom")

    def test_tasks_actually_run_in_other_processes(self):
        pids = set(parallel_map(_worker_pid, range(8), jobs=2, backend="process"))
        assert os.getpid() not in pids
        assert len(pids) == 2

    def test_workers_know_they_are_workers(self):
        flags = parallel_map(_in_worker_flag, range(4), jobs=2, backend="process")
        assert flags == [True] * 4
        assert not in_worker()

    def test_large_numpy_payloads_roundtrip(self):
        arrays = [np.full(30_000, float(i)) for i in range(4)]  # 240KB each
        before = perf.snapshot()["counters"].get("parallel.shm_segments", 0)
        sums = parallel_map(_checksum, arrays, jobs=2, backend="process")
        assert sums == [float(a.sum()) for a in arrays]
        after = perf.snapshot()["counters"]["parallel.shm_segments"]
        assert after > before  # big items went through shared memory

    def test_closure_falls_back_to_threads(self):
        captured = 10
        before = perf.snapshot()["counters"].get("parallel.process_fallback", 0)
        result = parallel_map(
            lambda x: x + captured, range(6), jobs=2, backend="process"
        )
        assert result == [x + 10 for x in range(6)]
        after = perf.snapshot()["counters"]["parallel.process_fallback"]
        assert after == before + 1

    def test_jobs_one_is_serial_no_pool(self):
        assert parallel_map(_worker_pid, range(3), jobs=1, backend="process") == [
            os.getpid()
        ] * 3

    def test_cost_estimates_do_not_change_results(self):
        items = list(range(12))
        plain = parallel_map(_square, items, jobs=2, backend="process")
        costed = parallel_map(
            _square, items, jobs=2, backend="process",
            cost=lambda x: float(100 - x),
        )
        assert plain == costed == [x * x for x in items]

    def test_worker_perf_merges_into_parent(self):
        parallel_map(_square, range(10), jobs=2, backend="process")
        # other live pools (from earlier tests in the session) may drain
        # too; at least this map's two workers must report in
        assert sync_worker_perf() >= 2
        counters = perf.snapshot()["counters"]
        per_worker = [
            key for key in counters if key.startswith("parallel.task_run.")
        ]
        timers = perf.snapshot()["timers"]
        assert any(key in timers for key in per_worker) or any(
            key.startswith("parallel.tasks.w") for key in counters
        )
