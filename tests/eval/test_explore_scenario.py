"""Explore eval scenario: QoR-vs-budget curves, ledger wiring, metrics."""

import json

from repro.eval import ExploreQoRResult, run_explore_qor
from repro.obs import metrics


class TestExploreScenario:
    def test_curves_ledger_and_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path))
        result = run_explore_qor(
            designs=["dynamic_node"], budgets=(8, 16), seed=1, chains=1,
            jobs=1,
        )
        assert set(result.greedy) == {"dynamic_node"}
        assert set(result.curves["dynamic_node"]) == {8, 16}
        greedy = result.greedy["dynamic_node"]
        for q in result.curves["dynamic_node"].values():
            # The explorer never worsens the greedy reference point.
            assert (max(0.0, -q.wns), q.area) <= (
                max(0.0, -greedy.wns), greedy.area
            )
        rendered = result.render()
        assert "dynamic_node" in rendered and "@8:WNS" in rendered

        manifests = sorted(tmp_path.glob("*-explore.json"))
        assert manifests
        record = json.loads(manifests[-1].read_text())
        assert "greedy/dynamic_node" in record["qor"]
        assert "explore@16/dynamic_node" in record["qor"]
        assert record["extra"]["budgets"] == [8, 16]

        # The parent-side explorer metrics reached the typed registry.
        counter = metrics.counter(
            "repro_explore_moves_total",
            "Move-set trials evaluated by the design-space explorer",
        )
        assert counter.value() >= 24  # two budgets: 8 + 16 trials minimum

    def test_result_render_handles_missing_points(self):
        result = ExploreQoRResult()
        assert "Explore" in result.render()
