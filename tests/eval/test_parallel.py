"""Tests for the parallel evaluation executor."""

import contextvars
import threading

import pytest

from repro import perf
from repro.parallel import DEFAULT_MAX_JOBS, parallel_map, resolve_jobs


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_default_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert 1 <= resolve_jobs() <= DEFAULT_MAX_JOBS

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestParallelMap:
    def test_preserves_order(self):
        result = parallel_map(lambda x: x * x, range(50), jobs=4)
        assert result == [x * x for x in range(50)]

    def test_serial_when_one_job(self):
        seen_threads = set()

        def record(x):
            seen_threads.add(threading.current_thread().name)
            return x

        parallel_map(record, range(10), jobs=1)
        assert seen_threads == {threading.current_thread().name}

    def test_actually_uses_workers(self):
        barrier = threading.Barrier(2, timeout=10)

        def rendezvous(x):
            barrier.wait()  # deadlocks (then times out) unless 2 threads run
            return x

        assert parallel_map(rendezvous, [1, 2], jobs=2) == [1, 2]

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("boom")
            return x

        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(boom, range(6), jobs=3)

    def test_empty_input(self):
        assert parallel_map(lambda x: x, [], jobs=4) == []

    def test_single_item(self):
        assert parallel_map(lambda x: x + 1, [41], jobs=4) == [42]

    def test_matches_serial_results(self):
        items = list(range(25))
        assert parallel_map(str, items, jobs=6) == parallel_map(str, items, jobs=1)


_AMBIENT = contextvars.ContextVar("test_parallel_ambient", default="unset")


class TestContextPropagation:
    def test_workers_see_callers_contextvars(self):
        token = _AMBIENT.set("from-caller")
        try:
            seen = parallel_map(lambda _: _AMBIENT.get(), range(8), jobs=4)
        finally:
            _AMBIENT.reset(token)
        assert seen == ["from-caller"] * 8

    def test_worker_mutations_stay_isolated(self):
        token = _AMBIENT.set("caller")
        try:

            def mutate(i):
                _AMBIENT.set(f"worker-{i}")
                return _AMBIENT.get()

            assert parallel_map(mutate, range(6), jobs=3) == [
                f"worker-{i}" for i in range(6)
            ]
            # each task got its own context copy: the caller is untouched
            assert _AMBIENT.get() == "caller"
        finally:
            _AMBIENT.reset(token)


class TestQueueWaitTimer:
    def test_queue_wait_recorded_per_task(self):
        before = perf.snapshot()["timers"].get("eval.parallel_queue_wait", {})
        parallel_map(lambda x: x, range(12), jobs=3)
        after = perf.snapshot()["timers"]["eval.parallel_queue_wait"]
        assert after["calls"] - before.get("calls", 0) == 12
        assert after["total_s"] >= before.get("total_s", 0.0)
        assert {"p50_s", "p95_s", "max_s"} <= set(after)

    def test_serial_path_records_nothing(self):
        before = perf.snapshot()["timers"].get("eval.parallel_queue_wait", {})
        parallel_map(lambda x: x, range(12), jobs=1)
        after = perf.snapshot()["timers"].get("eval.parallel_queue_wait", {})
        assert after.get("calls", 0) == before.get("calls", 0)
