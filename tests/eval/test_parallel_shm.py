"""Tests for the shared-memory payload transport (repro.parallel.shm)."""

import pickle
from dataclasses import dataclass

import numpy as np
import pytest

from repro.parallel import shm
from repro.parallel.shm import (
    OpenPayload,
    SharedRef,
    ShmHandle,
    dump_to_shm,
    load_from_shm,
    release_shared,
    resolve_shared,
    shared,
    shm_min_bytes,
    unlink_handle,
)


@dataclass
class SoABundle:
    """A stand-in for the levelized SoA timing arrays."""

    arrival: np.ndarray
    slew: np.ndarray
    names: list


def _bundle(n: int = 1000) -> SoABundle:
    rng = np.random.default_rng(7)
    return SoABundle(
        arrival=rng.standard_normal(n),
        slew=rng.standard_normal(n).astype(np.float32),
        names=[f"g{i}" for i in range(n)],
    )


class TestRoundtrip:
    def test_copying_load(self):
        bundle = _bundle()
        handle = dump_to_shm(bundle)
        try:
            out = load_from_shm(handle, copy=True)
            np.testing.assert_array_equal(out.arrival, bundle.arrival)
            np.testing.assert_array_equal(out.slew, bundle.slew)
            assert out.names == bundle.names
            # copies own their memory: segment death cannot touch them
            assert out.arrival.flags.owndata or out.arrival.base is not handle
        finally:
            unlink_handle(handle)

    def test_zero_copy_load(self):
        bundle = _bundle()
        handle = dump_to_shm(bundle)
        try:
            opened = load_from_shm(handle, copy=False)
            assert isinstance(opened, OpenPayload)
            np.testing.assert_array_equal(opened.obj.arrival, bundle.arrival)
            # the array aliases the shared pages rather than owning a copy
            assert not opened.obj.arrival.flags.owndata
            opened.close()
            assert opened.obj is None
        finally:
            unlink_handle(handle)

    def test_plain_objects_without_buffers(self):
        obj = {"rows": [1, 2, 3], "label": "aes"}
        handle = dump_to_shm(obj)
        try:
            assert load_from_shm(handle, copy=True) == obj
        finally:
            unlink_handle(handle)

    def test_handle_is_small_and_picklable(self):
        handle = dump_to_shm(_bundle())
        try:
            assert isinstance(handle, ShmHandle)
            assert len(pickle.dumps(handle)) < 200
        finally:
            unlink_handle(handle)

    def test_unlink_is_idempotent(self):
        handle = dump_to_shm([1, 2, 3])
        unlink_handle(handle)
        unlink_handle(handle)  # second unlink: no-op, no raise


class TestSharedRefs:
    def test_thread_backend_creates_no_segment(self):
        ref = shared({"a": 1}, backend="thread")
        try:
            assert ref.handle is None
            assert resolve_shared(ref) == {"a": 1}
        finally:
            release_shared(ref)

    def test_process_backend_creates_segment(self):
        payload = _bundle(100)
        ref = shared(payload, backend="process")
        try:
            assert ref.handle is not None
            # local side resolves to the identical object, no copy
            assert resolve_shared(ref) is payload
        finally:
            release_shared(ref)

    def test_pickled_ref_resolves_from_segment(self):
        payload = _bundle(100)
        ref = shared(payload, backend="process")
        try:
            # simulate the worker side: the ref crosses a pipe, losing
            # its in-process object, and must resolve through the segment
            remote = pickle.loads(pickle.dumps(ref))
            assert remote._local is None
            out = resolve_shared(remote)
            np.testing.assert_array_equal(out.arrival, payload.arrival)
            # second resolve hits the memo (same object back)
            assert resolve_shared(remote) is out
        finally:
            release_shared(ref)

    def test_release_unlinks_and_resolution_fails(self):
        ref = shared(_bundle(50), backend="process")
        remote = pickle.loads(pickle.dumps(ref))
        release_shared(ref)
        release_shared(remote)  # drop any memoized copy too
        with pytest.raises((ValueError, FileNotFoundError)):
            resolve_shared(pickle.loads(pickle.dumps(remote)))

    def test_ref_without_payload_raises(self):
        ref = SharedRef(token="never-created")
        with pytest.raises(ValueError, match="no payload"):
            resolve_shared(ref)


class TestThreshold:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES", raising=False)
        assert shm_min_bytes() == shm.DEFAULT_SHM_MIN_BYTES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "128")
        assert shm_min_bytes() == 128

    def test_env_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "big")
        with pytest.raises(ValueError):
            shm_min_bytes()
