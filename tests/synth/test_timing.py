"""Tests for the wireload models and static timing analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import elaborate
from repro.hdl.netlist import Netlist
from repro.synth import (
    Constraints,
    TimingEngine,
    get_wireload,
    nangate45,
)
from repro.synth.techmap import map_to_library


def engine_for(netlist, period=1.0, wireload="5K_heavy_1k", **kw):
    constraints = Constraints(clock_period=period, **kw)
    return TimingEngine(netlist, nangate45(), get_wireload(wireload), constraints)


def inverter_chain(n):
    nl = Netlist("chain")
    nl.add_net("in", is_input=True)
    prev = "in"
    for i in range(n):
        out = f"n{i}" if i < n - 1 else "out"
        if i == n - 1:
            nl.add_net(out, is_output=True)
        nl.add_cell("NOT", [prev], out)
        prev = out
    return nl


class TestWireload:
    def test_monotonic_in_fanout(self):
        model = get_wireload("5K_heavy_1k")
        caps = [model.capacitance(f) for f in range(1, 30)]
        assert all(b > a for a, b in zip(caps, caps[1:]))

    def test_zero_fanout(self):
        assert get_wireload("5K_heavy_1k").capacitance(0) == 0.0

    def test_extrapolation_beyond_table(self):
        model = get_wireload("5K_heavy_1k")
        base = model.capacitance(len(model.table))
        assert model.capacitance(len(model.table) + 2) == pytest.approx(
            base + 2 * model.slope
        )

    def test_heavier_model_more_cap(self):
        light = get_wireload("5K_hvratio_1_1")
        heavy = get_wireload("10K_heavy_2k")
        for fanout in (1, 4, 16):
            assert heavy.capacitance(fanout) > light.capacitance(fanout)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_wireload("imaginary")


class TestCombinationalSTA:
    def test_longer_chain_longer_delay(self):
        short = engine_for(inverter_chain(4)).analyze()
        long = engine_for(inverter_chain(12)).analyze()
        assert long.cps < short.cps

    def test_slack_linear_in_period(self):
        nl = inverter_chain(6)
        r1 = engine_for(nl, period=1.0).analyze()
        r2 = engine_for(nl, period=2.0).analyze()
        assert r2.cps - r1.cps == pytest.approx(1.0, abs=1e-9)

    def test_violation_detection(self):
        nl = inverter_chain(40)
        report = engine_for(nl, period=0.1).analyze()
        assert report.wns < 0
        assert report.num_violations >= 1
        assert not report.met

    def test_wns_clamped_at_zero_when_met(self):
        report = engine_for(inverter_chain(2), period=10.0).analyze()
        assert report.wns == 0.0
        assert report.cps > 0

    def test_tns_sums_violations(self):
        nl = Netlist("two_paths")
        nl.add_net("a", is_input=True)
        nl.add_net("y1", is_output=True)
        nl.add_net("y2", is_output=True)
        nl.add_cell("NOT", ["a"], "m1")
        nl.add_cell("NOT", ["m1"], "y1")
        nl.add_cell("NOT", ["a"], "m2")
        nl.add_cell("NOT", ["m2"], "y2")
        report = engine_for(nl, period=0.0).analyze()
        assert report.tns <= report.wns
        assert report.num_violations == 2

    def test_input_delay_shifts_arrival(self):
        nl = inverter_chain(4)
        base = engine_for(nl).analyze()
        shifted = engine_for(nl, input_delay=0.3).analyze()
        assert base.cps - shifted.cps == pytest.approx(0.3, abs=1e-9)

    def test_critical_path_trace(self):
        nl = inverter_chain(5)
        report = engine_for(nl).analyze()
        path = report.critical_path
        assert path is not None
        assert path.startpoint == "in"
        assert path.points[-1].net == "out"
        assert path.arrival == pytest.approx(
            sum(p.incr for p in path.points), abs=1e-9
        )

    @given(st.integers(2, 12))
    @settings(max_examples=10, deadline=None)
    def test_monotone_load_property(self, fanout):
        """Adding sinks to a net never decreases the driver's delay."""
        nl = Netlist("fan")
        nl.add_net("a", is_input=True)
        nl.add_cell("NOT", ["a"], "mid")
        nl.add_net("out", is_output=True)
        nl.add_cell("BUF", ["mid"], "out")
        eng = engine_for(nl)
        before = eng.cell_delay(nl.cells[nl.nets["mid"].driver])
        for i in range(fanout):
            nl.add_cell("BUF", ["mid"], f"x{i}")
        after = eng.cell_delay(nl.cells[nl.nets["mid"].driver])
        assert after > before


class TestSequentialSTA:
    SRC = """
    module seq(input clk, input [7:0] a, output reg [7:0] q);
      reg [7:0] s;
      always @(posedge clk) begin
        s <= a + 8'd1;
        q <= s * 8'd5;
      end
    endmodule
    """

    def netlist(self):
        nl = elaborate(self.SRC, "seq")
        map_to_library(nl, nangate45())
        return nl

    def test_register_endpoints_counted(self):
        report = engine_for(self.netlist(), period=5.0).analyze()
        # 16 register endpoints + 8 output ports
        assert report.num_endpoints == 24

    def test_clock_net_not_a_data_path(self):
        nl = self.netlist()
        report = engine_for(nl, period=5.0).analyze()
        assert report.critical_path is not None
        assert "clk" not in [p.net for p in report.critical_path.points]

    def test_reg_to_reg_path_timed(self):
        report = engine_for(self.netlist(), period=0.2).analyze()
        assert report.wns < 0
        # the multiplier stage should dominate
        assert report.critical_path.endpoint.startswith(("reg:", "out:"))

    def test_area_and_power_positive(self):
        eng = engine_for(self.netlist())
        assert eng.total_area() > 0
        assert eng.total_leakage() > 0
        assert eng.dynamic_power() > 0

    def test_clock_uncertainty_tightens(self):
        nl = self.netlist()
        loose = engine_for(nl, period=2.0).analyze()
        tight = engine_for(nl, period=2.0, clock_uncertainty=0.2).analyze()
        assert tight.cps == pytest.approx(loose.cps - 0.2, abs=1e-9)

    def test_no_endpoints_design(self):
        nl = Netlist("empty")
        nl.add_net("a", is_input=True)
        report = engine_for(nl).analyze()
        assert report.num_endpoints == 0
        assert report.met
