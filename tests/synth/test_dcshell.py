"""End-to-end tests for the DC-style synthesis shell."""

import pytest

from repro.synth import DCShell

PIPE_SRC = """
module pipe(input clk, input [15:0] a, input [15:0] b, output reg [15:0] y);
  reg [15:0] s1;
  reg [15:0] s2;
  always @(posedge clk) begin
    s1 <= a + b;
    s2 <= s1 * 16'd3;
    y <= s2 ^ {s2[7:0], s2[15:8]};
  end
endmodule
"""

BASE_SCRIPT = """
read_verilog pipe
current_design pipe
link
set_wire_load_model -name 5K_heavy_1k
create_clock -period {period} clk
compile
report_qor
"""


@pytest.fixture
def shell():
    s = DCShell()
    s.add_design("pipe", PIPE_SRC)
    return s


class TestScriptExecution:
    def test_basic_flow_succeeds(self, shell):
        result = shell.run_script(BASE_SCRIPT.format(period=2.0))
        assert result.success
        assert result.qor is not None
        assert result.qor.area > 0
        assert result.qor.num_registers == 48

    def test_unknown_command_fails_script(self, shell):
        result = shell.run_script("read_verilog pipe\nmake_it_faster -please")
        assert not result.success
        assert "make_it_faster" in result.error

    def test_unknown_design_fails(self, shell):
        result = shell.run_script("read_verilog mystery_chip")
        assert not result.success
        assert "mystery_chip" in result.error

    def test_compile_before_read_fails(self, shell):
        result = shell.run_script("compile")
        assert not result.success

    def test_bad_wireload_fails(self, shell):
        result = shell.run_script(
            "read_verilog pipe\nset_wire_load_model -name nonexistent"
        )
        assert not result.success

    def test_transcript_records_commands(self, shell):
        result = shell.run_script(BASE_SCRIPT.format(period=2.0))
        commands = [line for line, _ in result.transcript]
        assert any(c.startswith("compile") for c in commands)

    def test_variables_in_script(self, shell):
        script = """
        set PERIOD 2.0
        read_verilog pipe
        create_clock -period $PERIOD clk
        compile
        """
        result = shell.run_script(script)
        assert result.success
        assert shell.constraints.clock_period == 2.0


class TestQoREffects:
    def test_tighter_clock_worse_slack(self):
        results = {}
        for period in (0.8, 3.0):
            shell = DCShell()
            shell.add_design("pipe", PIPE_SRC)
            results[period] = shell.run_script(BASE_SCRIPT.format(period=period)).qor
        assert results[0.8].cps < results[3.0].cps

    def test_compile_ultra_beats_compile(self):
        period = 0.7
        qors = {}
        for name, command in [("basic", "compile"), ("ultra", "compile_ultra")]:
            shell = DCShell()
            shell.add_design("pipe", PIPE_SRC)
            script = BASE_SCRIPT.format(period=period).replace("compile\n", command + "\n")
            qors[name] = shell.run_script(script).qor
        assert qors["ultra"].cps >= qors["basic"].cps

    def test_retiming_option_helps_imbalanced_pipe(self):
        period = 0.62
        qors = {}
        for name, command in [("plain", "compile_ultra"), ("retime", "compile_ultra -retime")]:
            shell = DCShell()
            shell.add_design("pipe", PIPE_SRC)
            script = BASE_SCRIPT.format(period=period).replace(
                "compile\n", command + "\n"
            )
            qors[name] = shell.run_script(script).qor
        assert qors["retime"].cps >= qors["plain"].cps

    def test_optimize_registers_command(self, shell):
        script = BASE_SCRIPT.format(period=0.62) + "\noptimize_registers\n"
        result = shell.run_script(script)
        assert result.success

    def test_max_fanout_constraint_enforced(self):
        shell = DCShell()
        src = """
        module hf(input sel, input [63:0] a, input [63:0] b, output [63:0] y);
          assign y = sel ? a : b;
        endmodule
        """
        shell.add_design("hf", src)
        result = shell.run_script(
            """
            read_verilog hf
            create_clock -period 2.0 clk
            set_max_fanout 10
            compile
            """
        )
        assert result.success
        assert result.qor.max_fanout <= 10

    def test_set_max_area_triggers_recovery(self):
        shell = DCShell()
        shell.add_design("pipe", PIPE_SRC)
        script = """
        read_verilog pipe
        create_clock -period 5.0 clk
        set_max_area 0
        compile
        """
        unconstrained = DCShell()
        unconstrained.add_design("pipe", PIPE_SRC)
        loose = unconstrained.run_script(
            "read_verilog pipe\ncreate_clock -period 5.0 clk\ncompile"
        )
        constrained = shell.run_script(script)
        assert constrained.qor.area <= loose.qor.area


class TestReports:
    def test_report_qor_text(self, shell):
        result = shell.run_script(BASE_SCRIPT.format(period=2.0))
        qor_text = [out for line, out in result.transcript if line == "report_qor"][0]
        assert "Critical Path Slack" in qor_text
        assert "Design Area" in qor_text

    def test_report_timing_text(self, shell):
        shell.run_script(BASE_SCRIPT.format(period=2.0))
        text = shell.timing_report()
        assert "Startpoint" in text
        assert "slack" in text

    def test_report_area_text(self, shell):
        result = shell.run_script(
            BASE_SCRIPT.format(period=2.0) + "\nreport_area\n"
        )
        area_text = [out for line, out in result.transcript if line == "report_area"][0]
        assert "Total cell area" in area_text

    def test_report_power_text(self, shell):
        result = shell.run_script(
            BASE_SCRIPT.format(period=2.0) + "\nreport_power\n"
        )
        power_text = [out for line, out in result.transcript if line == "report_power"][0]
        assert "Leakage" in power_text
