"""Property-based invariants for optimization passes.

Random combinational/sequential netlists are pushed through every pass;
afterwards the netlist must (a) remain structurally valid and (b) compute
the same function, proven by exhaustive or sampled simulation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.netlist import Netlist
from repro.hdl.sim import Simulator
from repro.synth import (
    Constraints,
    balance_chains,
    buffer_high_fanout,
    get_wireload,
    nangate45,
    recover_area,
    size_gates,
)
from repro.synth.techmap import cleanup, map_to_library

LIB = nangate45()
WL = get_wireload("5K_heavy_1k")

_GATES = ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2", "NOT", "BUF", "MUX2"]


@st.composite
def random_netlist(draw, max_gates=25, num_inputs=5):
    """A random combinational DAG netlist over ``num_inputs`` inputs."""
    netlist = Netlist("rand")
    nets = []
    for i in range(num_inputs):
        netlist.add_net(f"in{i}", is_input=True)
        nets.append(f"in{i}")
    num_gates = draw(st.integers(3, max_gates))
    for g in range(num_gates):
        gate = draw(st.sampled_from(_GATES))
        arity = {"NOT": 1, "BUF": 1, "MUX2": 3}.get(gate, 2)
        inputs = [draw(st.sampled_from(nets)) for _ in range(arity)]
        out = f"g{g}"
        netlist.add_cell(gate, inputs, out)
        nets.append(out)
    # Choose 2 output nets among the last created gates.
    out_count = draw(st.integers(1, 2))
    for i in range(out_count):
        src = nets[-(i + 1)]
        port = netlist.add_net(f"out{i}", is_output=True)
        netlist.add_cell("BUF", [src], port.name)
    return netlist


def signature(netlist, num_inputs=5, samples=16, seed=0):
    rng = np.random.default_rng(seed)
    outs = []
    for _ in range(samples):
        sim = Simulator(netlist)
        for i in range(num_inputs):
            sim.set_input(f"in{i}", int(rng.integers(2)))
        sim.settle()
        outs.append(tuple(sim.values[n] for n in sorted(netlist.primary_outputs)))
    return outs


class TestPassInvariants:
    @given(random_netlist())
    @settings(max_examples=25, deadline=None)
    def test_cleanup_preserves_function(self, netlist):
        before = signature(netlist)
        map_to_library(netlist, LIB)
        cleanup(netlist, LIB, flatten=True)
        netlist.validate()
        assert signature(netlist) == before

    @given(random_netlist())
    @settings(max_examples=15, deadline=None)
    def test_balance_chains_preserves_function(self, netlist):
        before = signature(netlist)
        map_to_library(netlist, LIB)
        balance_chains(netlist, LIB)
        netlist.validate()
        assert signature(netlist) == before

    @given(random_netlist(), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_buffering_preserves_function_and_caps_fanout(self, netlist, limit):
        before = signature(netlist)
        map_to_library(netlist, LIB)
        buffer_high_fanout(netlist, LIB, WL, Constraints(), max_fanout=limit)
        netlist.validate()
        assert signature(netlist) == before
        for name in netlist.nets:
            driver = netlist.driver_cell(name)
            if driver is not None and driver.gate in ("CONST0", "CONST1"):
                continue
            pin_counts = [
                netlist.cells[s].inputs.count(name)
                for s in netlist.nets[name].sinks
            ]
            data_pins = sum(pin_counts)
            heaviest = max(pin_counts, default=1)
            # One indivisible multi-pin sink may exceed the limit alone.
            assert data_pins <= max(limit, heaviest)

    @given(random_netlist())
    @settings(max_examples=10, deadline=None)
    def test_sizing_never_changes_function(self, netlist):
        before = signature(netlist)
        map_to_library(netlist, LIB)
        size_gates(netlist, LIB, WL, Constraints(clock_period=0.05), max_rounds=8)
        netlist.validate()
        assert signature(netlist) == before

    @given(random_netlist())
    @settings(max_examples=10, deadline=None)
    def test_area_recovery_never_increases_area(self, netlist):
        map_to_library(netlist, LIB)
        from repro.synth import TimingEngine

        engine = TimingEngine(netlist, LIB, WL, Constraints(clock_period=100.0))
        before_area = engine.total_area()
        result = recover_area(netlist, LIB, WL, Constraints(clock_period=100.0))
        assert result.area_after <= before_area + 1e-9
        netlist.validate()

    @given(random_netlist())
    @settings(max_examples=10, deadline=None)
    def test_passes_compose(self, netlist):
        """The full ultra-style sequence keeps validity + function."""
        before = signature(netlist)
        map_to_library(netlist, LIB)
        cleanup(netlist, LIB, flatten=True)
        balance_chains(netlist, LIB)
        cleanup(netlist, LIB, flatten=True)
        map_to_library(netlist, LIB)
        size_gates(netlist, LIB, WL, Constraints(clock_period=0.1), max_rounds=5)
        buffer_high_fanout(netlist, LIB, WL, Constraints(), max_fanout=4)
        netlist.validate()
        assert signature(netlist) == before
