"""Cross-mode parity: batched pass engine == scalar per-trial fallback.

ISSUE 5 promises that ``REPRO_FAST_OPT`` never changes results — only
how candidate trials are evaluated.  Fast mode scores upsizing and
recovery candidates through ``TimingEngine.trial_cps_batch`` (grouped
kernel sweeps against the committed SoA arrays); scalar mode applies
each candidate and reads a full incremental ``analyze``.  Both must
produce the identical accepted-change sequence, the identical final
netlist (fingerprint), and identical QoR, on random netlists and on
real OpenCores compile flows, in both STA engine modes.

Mode forcing mirrors ``test_soa_parity``: ``_use_vector`` is set on the
engine directly and ``PassContext(fast=...)`` pins the pass loops, so
all four combinations run in one process regardless of the environment.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.designs import get_benchmark
from repro.synth import Constraints, get_wireload, nangate45
from repro.synth.cache import synthesis_key
from repro.synth.dcshell import DCShell
from repro.synth.optimizer import recover_area, size_gates
from repro.synth.passes import PassContext, fast_opt_enabled
from repro.synth.techmap import propagate_constants

from .test_soa_parity import random_mapped_netlist

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")


def _context(netlist, constraints, fast, vector):
    ctx = PassContext(netlist, LIBRARY, WIRELOAD, constraints, fast=fast)
    ctx.engine._use_vector = vector
    return ctx


def _sizing_flow(netlist, constraints, fast, vector):
    """The pass sequence under test; returns (results, bindings, fingerprint)."""
    ctx = _context(netlist, constraints, fast, vector)
    results = [
        size_gates(
            netlist, LIBRARY, WIRELOAD, constraints,
            max_rounds=8, scan=6, context=ctx,
        ),
        recover_area(
            netlist, LIBRARY, WIRELOAD, constraints,
            slack_margin=-5.0, context=ctx,
        ),
    ]
    bindings = {c.name: c.lib_cell for c in netlist.cells.values()}
    return results, bindings, netlist.fingerprint()


class TestRandomNetlistParity:
    @settings(max_examples=30, deadline=None)
    @given(random_mapped_netlist())
    def test_fast_matches_scalar_pass_loops(self, case):
        netlist, constraints = case
        runs = [
            _sizing_flow(netlist.clone(), constraints, fast, vector)
            for fast, vector in (
                (True, True), (False, True), (True, False), (False, False),
            )
        ]
        reference = runs[0]
        for other in runs[1:]:
            assert other == reference

    @settings(max_examples=20, deadline=None)
    @given(random_mapped_netlist(), st.integers(0, 2**32 - 1))
    def test_batch_lanes_match_sequential_rebinds(self, case, seed):
        """Every trial_cps_batch lane == rebind applied alone (or grouped)."""
        from repro.rand import rng as seeded_rng

        netlist, constraints = case
        ctx = _context(netlist, constraints, True, True)
        engine = ctx.engine
        engine.analyze()
        upgrade = ctx.upgrade_table()
        sized = [
            (c.name, upgrade[c.lib_cell].name)
            for c in netlist.cells.values()
            if c.lib_cell is not None and upgrade[c.lib_cell] is not None
        ]
        if not sized:
            return
        rng = seeded_rng(seed)
        lanes = []
        for _ in range(min(6, len(sized))):
            group = rng.sample(sized, k=min(rng.randint(1, 3), len(sized)))
            if len({name for name, _ in group}) < len(group):
                continue
            lanes.append(group[0] if len(group) == 1 else group)
        if not lanes:
            return
        batch = engine.trial_cps_batch(lanes)
        for lane, got in zip(lanes, batch):
            rebinds = [lane] if isinstance(lane[0], str) else list(lane)
            previous = [
                (netlist.cells[name], netlist.cells[name].lib_cell)
                for name, _ in rebinds
            ]
            for name, lib_name in rebinds:
                netlist.cells[name].lib_cell = lib_name
            expected = engine.analyze(with_paths=False).cps
            for cell, prev in previous:
                cell.lib_cell = prev
            engine.analyze(with_paths=False)  # fold the revert
            assert got == expected, lane


class TestOpenCoresParity:
    @pytest.mark.parametrize("design", ["dynamic_node", "riscv32i"])
    def test_dcshell_compile_modes_identical(self, design, monkeypatch):
        bench = get_benchmark(design)
        outcomes = {}
        for mode in ("1", "0"):
            monkeypatch.setenv("REPRO_FAST_OPT", mode)
            shell = DCShell()
            shell.add_design(design, bench.verilog, bench.top)
            result = shell.run_script(
                "\n".join(
                    [
                        f"read_verilog {design}",
                        f"create_clock -period {bench.clock_period * 0.9}",
                        "set_max_fanout 24",
                        "set_max_area 0",
                        "compile_ultra",
                    ]
                )
            )
            assert result.success, result.error
            outcomes[mode] = (shell.netlist.fingerprint(), shell.qor())
        assert outcomes["1"] == outcomes["0"]

    def test_fast_mode_drops_analyze_calls(self):
        bench = get_benchmark("riscv32i")
        from repro.hdl import elaborate
        from repro.synth.techmap import map_to_library

        reports = {}
        batches = {}
        for fast in (True, False):
            netlist = elaborate(bench.verilog, bench.top)
            map_to_library(netlist, LIBRARY)
            constraints = Constraints(clock_period=bench.clock_period * 0.8)
            ctx = _context(netlist, constraints, fast, True)
            ctx.engine.analyze()
            perf.reset()
            size_gates(
                netlist, LIBRARY, WIRELOAD, constraints,
                max_rounds=6, scan=16, context=ctx,
            )
            reports[fast] = perf.counter("sta.report")
            batches[fast] = perf.counter("sta.trial_batch")
        assert batches[True] > 0
        assert batches[False] == 0
        assert reports[True] < reports[False]


class TestModeGating:
    def test_fast_opt_enabled_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_OPT", raising=False)
        assert fast_opt_enabled()  # default on
        for off in ("0", "false", "no", "off", "NO", "False"):
            monkeypatch.setenv("REPRO_FAST_OPT", off)
            assert not fast_opt_enabled()
        monkeypatch.setenv("REPRO_FAST_OPT", "1")
        assert fast_opt_enabled()

    def test_context_fast_override_beats_env(self, monkeypatch):
        bench = get_benchmark("dynamic_node")
        from repro.hdl import elaborate
        from repro.synth.techmap import map_to_library

        netlist = elaborate(bench.verilog, bench.top)
        map_to_library(netlist, LIBRARY)
        constraints = Constraints(clock_period=bench.clock_period)
        monkeypatch.setenv("REPRO_FAST_OPT", "0")
        assert PassContext(
            netlist, LIBRARY, WIRELOAD, constraints, fast=True
        ).fast
        assert not PassContext(netlist, LIBRARY, WIRELOAD, constraints).fast

    def test_upgrade_table_shared_per_library(self):
        bench = get_benchmark("dynamic_node")
        from repro.hdl import elaborate
        from repro.synth.techmap import map_to_library

        netlist = elaborate(bench.verilog, bench.top)
        map_to_library(netlist, LIBRARY)
        constraints = Constraints(clock_period=bench.clock_period)
        a = PassContext(netlist, LIBRARY, WIRELOAD, constraints)
        b = PassContext(netlist.clone(), LIBRARY, WIRELOAD, constraints)
        assert a.upgrade_table() is b.upgrade_table()
        assert a.downgrade_table() is b.downgrade_table()

    def test_synthesis_cache_key_ignores_mode(self, monkeypatch):
        args = ("nangate45", "aes", "fingerprint", "aes", "compile_ultra")
        monkeypatch.setenv("REPRO_FAST_OPT", "1")
        fast_key = synthesis_key(*args)
        monkeypatch.setenv("REPRO_FAST_OPT", "0")
        assert synthesis_key(*args) == fast_key


class TestConstWorklist:
    def test_counter_zero_without_constant_seeds(self):
        from repro.hdl.netlist import Netlist

        netlist = Netlist("no_consts")
        netlist.add_net("a", is_input=True)
        netlist.add_net("b", is_input=True)
        netlist.add_cell("AND2", ["a", "b"], "n1")
        netlist.add_cell("XOR2", ["n1", "a"], "n2")
        netlist.add_net("out", is_output=True)
        netlist.add_cell("BUF", ["n2"], "out")
        perf.reset()
        changed = propagate_constants(netlist)
        # no CONST cells and no tied-input pairs: the seeded worklist is
        # empty, so the pass visits nothing instead of sweeping all cells
        assert perf.counter("techmap.const_cells_visited") == 0
        assert changed == 0

    def test_counter_tracks_visits_with_constants(self):
        from repro.hdl.netlist import Netlist

        netlist = Netlist("const_cone")
        netlist.add_net("a", is_input=True)
        netlist.add_cell("CONST0", [], "zero")
        netlist.add_cell("AND2", ["a", "zero"], "n1")
        netlist.add_cell("OR2", ["n1", "a"], "n2")
        netlist.add_net("out", is_output=True)
        netlist.add_cell("BUF", ["n2"], "out")
        perf.reset()
        changed = propagate_constants(netlist)
        assert changed >= 1
        assert perf.counter("techmap.const_cells_visited") >= 1
