"""Tests for the technology library and liberty parser."""

import pytest

from repro.synth import LibCell, TechLibrary, nangate45, parse_liberty, write_liberty
from repro.synth.liberty import LibertyError


class TestTechLibrary:
    def test_builtin_covers_all_generic_gates(self):
        lib = nangate45()
        from repro.hdl.netlist import GENERIC_GATES

        mappable = set(GENERIC_GATES) - {"CONST0", "CONST1"}
        assert mappable <= lib.functions()

    def test_drive_variants_sorted(self):
        lib = nangate45()
        drives = [c.drive for c in lib.variants("NAND2")]
        assert drives == sorted(drives)

    def test_weakest_and_upsize(self):
        lib = nangate45()
        weak = lib.weakest("AND2")
        assert weak.drive == 1
        up = lib.next_size_up(weak)
        assert up.drive > weak.drive
        top = lib.variants("AND2")[-1]
        assert lib.next_size_up(top) is None

    def test_stronger_cells_faster_under_load(self):
        lib = nangate45()
        weak = lib.weakest("NAND2")
        strong = lib.variants("NAND2")[-1]
        assert strong.delay(50.0) < weak.delay(50.0)
        assert strong.area > weak.area

    def test_dff_has_sequential_params(self):
        lib = nangate45()
        dff = lib.weakest("DFF")
        assert dff.is_sequential
        assert dff.setup > 0
        assert dff.clk_to_q > 0

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            nangate45().cell("NAND99_X9")

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            nangate45().weakest("LUT6")

    def test_duplicate_cell_rejected(self):
        cell = LibCell("X_X1", "BUF", 1, 1.0, 1.0, 4.0, 0.02, 1.0)
        with pytest.raises(ValueError):
            TechLibrary("t", [cell, cell])

    def test_inverter_cheapest_gate(self):
        lib = nangate45()
        inv = lib.weakest("NOT")
        for function in ("AND2", "XOR2", "MUX2"):
            assert inv.area <= lib.weakest(function).area


class TestLiberty:
    def test_round_trip(self):
        lib = nangate45()
        text = write_liberty(lib)
        parsed = parse_liberty(text)
        assert parsed.name == lib.name
        assert len(parsed.cells()) == len(lib.cells())
        for cell in lib.cells():
            other = parsed.cell(cell.name)
            assert other.area == pytest.approx(cell.area)
            assert other.drive_res == pytest.approx(cell.drive_res)
            assert other.function == cell.function
            if cell.is_sequential:
                assert other.setup == pytest.approx(cell.setup)

    def test_parse_minimal_library(self):
        text = """
        library (mini) {
          cell (INV_X1) {
            area : 0.5;
            function_class : "NOT";
            drive_strength : 1;
            pin (o) { direction : output; drive_resistance : 4.0; intrinsic_delay : 0.01; }
            pin (a) { direction : input; capacitance : 1.0; }
          }
        }
        """
        lib = parse_liberty(text)
        assert lib.name == "mini"
        assert lib.cell("INV_X1").function == "NOT"

    def test_comments_ignored(self):
        text = """
        /* header */
        library (c) {
          // one cell
          cell (B_X1) {
            area : 1.0;
            function_class : "BUF";
            pin (o) { direction : output; }
            pin (a) { direction : input; capacitance : 1.0; }
          }
        }
        """
        assert parse_liberty(text).cell("B_X1").area == 1.0

    def test_missing_output_pin_rejected(self):
        text = """
        library (bad) {
          cell (B_X1) { area : 1.0; pin (a) { direction : input; } }
        }
        """
        with pytest.raises(LibertyError):
            parse_liberty(text)

    def test_non_library_top_rejected(self):
        with pytest.raises(LibertyError):
            parse_liberty("cell (X) { }")

    def test_garbage_rejected(self):
        with pytest.raises(LibertyError):
            parse_liberty("library (x) { @@@ }")
