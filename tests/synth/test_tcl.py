"""Tests for the Tcl-subset interpreter."""

import pytest

from repro.synth import TclError, TclInterpreter


@pytest.fixture
def interp():
    return TclInterpreter()


class TestBasics:
    def test_set_and_substitute(self, interp):
        interp.eval_line("set period 2.0")
        assert interp.eval_line("set period") == "2.0"
        interp.eval_line('set msg "clk period is $period"')
        assert interp.variables["msg"] == "clk period is 2.0"

    def test_braced_substitution(self, interp):
        interp.variables["x"] = "5"
        interp.eval_line('set y "${x}ns"')
        assert interp.variables["y"] == "5ns"

    def test_braces_suppress_substitution(self, interp):
        interp.eval_line("set y {$x literal}")
        assert interp.variables["y"] == "$x literal"

    def test_command_substitution(self, interp):
        interp.eval_line("set a [expr 2 + 3]")
        assert interp.variables["a"] == "5"

    def test_nested_command_substitution(self, interp):
        interp.eval_line("set a [expr [expr 1 + 1] * 3]")
        assert interp.variables["a"] == "6"

    def test_puts_captures_output(self, interp):
        interp.eval_line('puts "hello"')
        assert interp.output == ["hello"]

    def test_unknown_command_raises(self, interp):
        with pytest.raises(TclError, match="invalid command"):
            interp.eval_line("fabricate_chip now")

    def test_undefined_variable_raises(self, interp):
        with pytest.raises(TclError, match="no such variable"):
            interp.eval_line("puts $ghost")


class TestScripts:
    def test_multiline_script(self, interp):
        results = interp.eval_script(
            """
            set a 1
            set b 2
            """
        )
        assert len(results) == 2

    def test_comments_and_blank_lines_skipped(self, interp):
        results = interp.eval_script(
            """
            # a comment

            set a 1
            """
        )
        assert len(results) == 1

    def test_semicolon_separation(self, interp):
        interp.eval_script("set a 1; set b 2")
        assert interp.variables == {"a": "1", "b": "2"}

    def test_line_continuation(self, interp):
        interp.eval_script("set a \\\n 42")
        assert interp.variables["a"] == "42"

    def test_error_mentions_command(self, interp):
        with pytest.raises(TclError, match="bogus_cmd"):
            interp.eval_script("set a 1\nbogus_cmd -x")


class TestExpr:
    def test_arithmetic(self, interp):
        assert interp.eval_line("expr 2 * (3 + 4)") == "14"

    def test_float_result(self, interp):
        assert interp.eval_line("expr 5 / 2.0") == "2.5"

    def test_comparison_result(self, interp):
        assert interp.eval_line("expr 3 > 2") == "1"

    def test_dangerous_expression_rejected(self, interp):
        with pytest.raises(TclError):
            interp.eval_line("expr __import__('os')")
