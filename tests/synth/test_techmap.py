"""Tests for technology mapping and structural cleanup passes.

Functional equivalence after every pass is checked by simulation.
"""

import numpy as np
import pytest

from repro.hdl import elaborate
from repro.hdl.sim import Simulator
from repro.synth import cleanup, map_to_library, nangate45
from repro.synth.techmap import (
    merge_inverters,
    propagate_constants,
    remove_buffers,
    sweep_dead_cells,
)

LIB = nangate45()

COMB_SRC = """
module comb(input [7:0] a, input [7:0] b, input s, output [7:0] y, output z);
  wire [7:0] t;
  assign t = (a & b) | (a ^ 8'hF0);
  assign y = s ? t + b : t - b;
  assign z = &a | ^b;
endmodule
"""


def io_signature(netlist, seeds=range(12)):
    """Deterministic functional fingerprint via simulation."""
    rng = np.random.default_rng(0)
    results = []
    for _ in seeds:
        sim = Simulator(netlist)
        sim.set_word("a", int(rng.integers(0, 256)), 8)
        sim.set_word("b", int(rng.integers(0, 256)), 8)
        sim.set_word("s", int(rng.integers(0, 2)), 1)
        sim.settle()
        results.append((sim.get_word("y", 8), sim.get_word("z", 1)))
    return results


@pytest.fixture
def comb_netlist():
    return elaborate(COMB_SRC, "comb")


class TestMapping:
    def test_all_cells_bound(self, comb_netlist):
        map_to_library(comb_netlist, LIB)
        for cell in comb_netlist.cells.values():
            if cell.gate not in ("CONST0", "CONST1"):
                assert cell.lib_cell is not None
                assert cell.lib_cell in LIB

    def test_mapping_preserves_function(self, comb_netlist):
        before = io_signature(comb_netlist)
        map_to_library(comb_netlist, LIB)
        assert io_signature(comb_netlist) == before


class TestCleanupPasses:
    def test_constant_propagation_preserves_function(self, comb_netlist):
        before = io_signature(comb_netlist)
        folded = propagate_constants(comb_netlist)
        assert folded > 0  # the ^ 8'hF0 constant must fold
        comb_netlist.validate()
        assert io_signature(comb_netlist) == before

    def test_buffer_removal_preserves_function(self, comb_netlist):
        before = io_signature(comb_netlist)
        remove_buffers(comb_netlist, flatten=True)
        comb_netlist.validate()
        assert io_signature(comb_netlist) == before

    def test_inverter_merge_creates_nand(self):
        src = """
        module m(input a, b, output y);
          assign y = ~(a & b);
        endmodule
        """
        nl = elaborate(src, "m")
        map_to_library(nl, LIB)
        remove_buffers(nl)
        merged = merge_inverters(nl, LIB)
        assert merged == 1
        gates = nl.stats()["gate_counts"]
        assert gates.get("NAND2", 0) == 1
        assert gates.get("AND2", 0) == 0
        sim = Simulator(nl)
        for a in (0, 1):
            for b in (0, 1):
                sim.set_input("a", a)
                sim.set_input("b", b)
                sim.settle()
                assert sim.values["y"] == 1 - (a & b)

    def test_dead_code_swept(self):
        src = """
        module m(input [3:0] a, output y);
          wire [3:0] unused;
          assign unused = a + 4'd3;
          assign y = a[0];
        endmodule
        """
        nl = elaborate(src, "m")
        removed = sweep_dead_cells(nl)
        assert removed > 0
        nl.validate()

    def test_dead_register_swept(self):
        src = """
        module m(input clk, input a, output y);
          reg ghost;
          always @(posedge clk) ghost <= a;
          assign y = a;
        endmodule
        """
        nl = elaborate(src, "m")
        sweep_dead_cells(nl)
        assert nl.stats()["sequential"] == 0

    def test_live_register_kept(self):
        src = """
        module m(input clk, input a, output reg y);
          always @(posedge clk) y <= a;
        endmodule
        """
        nl = elaborate(src, "m")
        sweep_dead_cells(nl)
        assert nl.stats()["sequential"] == 1

    def test_full_cleanup_shrinks_and_preserves(self, comb_netlist):
        before_sig = io_signature(comb_netlist)
        before_cells = comb_netlist.num_cells
        map_to_library(comb_netlist, LIB)
        totals = cleanup(comb_netlist, LIB, flatten=True)
        comb_netlist.validate()
        assert comb_netlist.num_cells < before_cells
        assert sum(totals.values()) > 0
        assert io_signature(comb_netlist) == before_sig

    def test_hierarchy_buffers_kept_without_flatten(self):
        src = """
        module inv(input a, output y); assign y = ~a; endmodule
        module top(input x, output z);
          wire m;
          inv u1 (.a(x), .y(m));
          inv u2 (.a(m), .y(z));
        endmodule
        """
        nl = elaborate(src, "top")
        kept = nl.clone()
        cleanup(kept, LIB, flatten=False)
        flat = nl.clone()
        cleanup(flat, LIB, flatten=True)
        kept_bufs = kept.stats()["gate_counts"].get("BUF", 0)
        flat_bufs = flat.stats()["gate_counts"].get("BUF", 0)
        assert kept_bufs > flat_bufs

    def test_share_logic_merges_duplicates(self):
        from repro.synth.techmap import share_logic

        src = """
        module m(input [3:0] a, b, output [3:0] y, z);
          assign y = a & b;
          assign z = a & b;
        endmodule
        """
        nl = elaborate(src, "m")
        before_ands = nl.stats()["gate_counts"]["AND2"]
        merged = share_logic(nl)
        nl.validate()
        assert merged >= 4  # one duplicated AND per bit
        assert nl.stats()["gate_counts"]["AND2"] == before_ands - merged
        sim = Simulator(nl)
        sim.set_word("a", 0b1100, 4)
        sim.set_word("b", 0b1010, 4)
        sim.settle()
        assert sim.get_word("y", 4) == 0b1000
        assert sim.get_word("z", 4) == 0b1000

    def test_share_logic_commutative_inputs(self):
        from repro.hdl.netlist import Netlist
        from repro.synth.techmap import share_logic

        nl = Netlist()
        nl.add_net("a", is_input=True)
        nl.add_net("b", is_input=True)
        nl.add_cell("AND2", ["a", "b"], "x")
        nl.add_cell("AND2", ["b", "a"], "y")  # same function, swapped pins
        nl.add_net("o1", is_output=True)
        nl.add_net("o2", is_output=True)
        nl.add_cell("BUF", ["x"], "o1")
        nl.add_cell("BUF", ["y"], "o2")
        assert share_logic(nl) == 1
        nl.validate()

    def test_share_logic_keeps_port_drivers(self):
        from repro.hdl.netlist import Netlist
        from repro.synth.techmap import share_logic

        nl = Netlist()
        nl.add_net("a", is_input=True)
        nl.add_net("p", is_output=True)
        nl.add_net("q", is_output=True)
        nl.add_cell("NOT", ["a"], "p")
        nl.add_cell("NOT", ["a"], "q")  # both drive ports: keep both
        assert share_logic(nl) == 0
        nl.validate()

    def test_share_logic_non_commutative_mux(self):
        from repro.hdl.netlist import Netlist
        from repro.synth.techmap import share_logic

        nl = Netlist()
        for name in ("s", "a", "b"):
            nl.add_net(name, is_input=True)
        nl.add_cell("MUX2", ["s", "a", "b"], "x")
        nl.add_cell("MUX2", ["s", "b", "a"], "y")  # different function!
        nl.add_net("o1", is_output=True)
        nl.add_net("o2", is_output=True)
        nl.add_cell("BUF", ["x"], "o1")
        nl.add_cell("BUF", ["y"], "o2")
        assert share_logic(nl) == 0

    def test_constant_output_port_terminates(self):
        """Regression: a constant driving a port must not oscillate.

        propagate_constants once looped forever here: the folded gate was
        replaced by a BUF-from-constant, which itself folded back to a
        constant, re-adding the BUF, ad infinitum.
        """
        src = """
        module m(input a, output y, output z);
          assign y = a & 1'b0;
          assign z = ~(a ^ a);
        endmodule
        """
        nl = elaborate(src, "m")
        cleanup(nl, LIB, flatten=True)  # must terminate
        nl.validate()
        sim = Simulator(nl)
        for a in (0, 1):
            sim.set_input("a", a)
            sim.settle()
            assert sim.values["y"] == 0
            assert sim.values["z"] == 1

    def test_map_complex_gates_aoi(self):
        from repro.hdl.netlist import Netlist
        from repro.synth.techmap import map_complex_gates

        nl = Netlist()
        for name in ("a", "b", "c"):
            nl.add_net(name, is_input=True)
        nl.add_cell("AND2", ["a", "b"], "ab")
        nl.add_net("y", is_output=True)
        nl.add_cell("NOR2", ["ab", "c"], "y")
        assert map_complex_gates(nl, LIB) == 1
        nl.validate()
        assert nl.stats()["gate_counts"] == {"AOI21": 1}
        sim = Simulator(nl)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    sim.set_input("a", a)
                    sim.set_input("b", b)
                    sim.set_input("c", c)
                    sim.settle()
                    assert sim.values["y"] == 1 - ((a & b) | c)

    def test_map_complex_gates_oai(self):
        from repro.hdl.netlist import Netlist
        from repro.synth.techmap import map_complex_gates

        nl = Netlist()
        for name in ("a", "b", "c"):
            nl.add_net(name, is_input=True)
        nl.add_cell("OR2", ["a", "b"], "ab")
        nl.add_net("y", is_output=True)
        nl.add_cell("NAND2", ["c", "ab"], "y")  # inner on second pin
        assert map_complex_gates(nl, LIB) == 1
        nl.validate()
        sim = Simulator(nl)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    sim.set_input("a", a)
                    sim.set_input("b", b)
                    sim.set_input("c", c)
                    sim.settle()
                    assert sim.values["y"] == 1 - ((a | b) & c)

    def test_map_complex_gates_respects_fanout(self):
        from repro.hdl.netlist import Netlist
        from repro.synth.techmap import map_complex_gates

        nl = Netlist()
        for name in ("a", "b", "c"):
            nl.add_net(name, is_input=True)
        nl.add_cell("AND2", ["a", "b"], "ab")
        nl.add_net("y", is_output=True)
        nl.add_net("z", is_output=True)
        nl.add_cell("NOR2", ["ab", "c"], "y")
        nl.add_cell("BUF", ["ab"], "z")  # second reader: no merge allowed
        assert map_complex_gates(nl, LIB) == 0

    def test_mux_constant_select_folds(self):
        src = """
        module m(input [3:0] a, b, output [3:0] y);
          wire sel;
          assign sel = 1'b1;
          assign y = sel ? a : b;
        endmodule
        """
        nl = elaborate(src, "m")
        propagate_constants(nl)
        sweep_dead_cells(nl)
        assert nl.stats()["gate_counts"].get("MUX2", 0) == 0
