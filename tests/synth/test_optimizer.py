"""Tests for timing-driven optimization passes.

Each pass must (a) move QoR in the promised direction and (b) preserve
functionality, checked by simulation where the design is combinational.
"""

import numpy as np
import pytest

from repro.hdl import elaborate
from repro.hdl.sim import Simulator
from repro.synth import (
    Constraints,
    TimingEngine,
    balance_chains,
    buffer_high_fanout,
    get_wireload,
    nangate45,
    recover_area,
    retime,
    size_gates,
)
from repro.synth.techmap import cleanup, map_to_library

LIB = nangate45()
WL = get_wireload("5K_heavy_1k")


def prepared(src, top, flatten=True):
    nl = elaborate(src, top)
    map_to_library(nl, LIB)
    cleanup(nl, LIB, flatten=flatten)
    map_to_library(nl, LIB)
    return nl


def analyze(nl, period):
    eng = TimingEngine(nl, LIB, WL, Constraints(clock_period=period))
    return eng.analyze(), eng


WIDE_XOR = """
module wide(input [31:0] a, input [31:0] b, output y);
  assign y = ^(a ^ b);
endmodule
"""

HIGH_FANOUT = """
module hf(input sel, input [63:0] a, input [63:0] b, output [63:0] y);
  assign y = sel ? a : b;
endmodule
"""

IMBALANCED_PIPE = """
module imb(input clk, input [7:0] a, input [7:0] b, output reg [15:0] q);
  reg [7:0] ra, rb;
  reg [15:0] m;
  always @(posedge clk) begin
    ra <= a;
    rb <= b;
    m <= (ra * rb) + {ra, rb};
    q <= m;
  end
endmodule
"""


class TestGateSizing:
    def test_sizing_improves_violated_slack(self):
        nl = prepared(WIDE_XOR, "wide")
        report, _ = analyze(nl, 0.4)
        if report.cps >= 0:
            pytest.skip("design already meets the tight period")
        result = size_gates(nl, LIB, WL, Constraints(clock_period=0.4))
        assert result.wns_after >= result.wns_before
        assert result.changes > 0
        assert result.area_after >= result.area_before

    def test_sizing_noop_when_met(self):
        nl = prepared(WIDE_XOR, "wide")
        result = size_gates(nl, LIB, WL, Constraints(clock_period=50.0))
        assert result.changes == 0

    def test_sizing_preserves_function(self):
        nl = prepared(WIDE_XOR, "wide")
        rng = np.random.default_rng(1)
        vectors = [
            (int(rng.integers(0, 2**32)), int(rng.integers(0, 2**32)))
            for _ in range(6)
        ]

        def signature():
            out = []
            for a, b in vectors:
                sim = Simulator(nl)
                sim.set_word("a", a, 32)
                sim.set_word("b", b, 32)
                sim.settle()
                out.append(sim.values["y"])
            return out

        before = signature()
        size_gates(nl, LIB, WL, Constraints(clock_period=0.3))
        assert signature() == before


class TestAreaRecovery:
    def test_downsizing_reduces_area_with_slack(self):
        nl = prepared(WIDE_XOR, "wide")
        # First upsize everything, then recover with a loose clock.
        for cell in nl.cells.values():
            if cell.lib_cell:
                strongest = LIB.variants(LIB.cell(cell.lib_cell).function)[-1]
                cell.lib_cell = strongest.name
        result = recover_area(nl, LIB, WL, Constraints(clock_period=50.0))
        assert result.changes > 0
        assert result.area_after < result.area_before
        assert result.wns_after >= 0

    def test_no_recovery_when_critical(self):
        nl = prepared(WIDE_XOR, "wide")
        result = recover_area(nl, LIB, WL, Constraints(clock_period=0.01))
        assert result.changes == 0


class TestFanoutBuffering:
    def test_buffers_cap_fanout(self):
        nl = prepared(HIGH_FANOUT, "hf")
        worst_before = max(nl.fanout(n) for n in nl.nets)
        assert worst_before > 16  # sel drives 64 muxes
        result = buffer_high_fanout(
            nl, LIB, WL, Constraints(clock_period=2.0), max_fanout=16
        )
        assert result.changes > 0
        nl.validate()
        worst_after = max(nl.fanout(n) for n in nl.nets)
        assert worst_after <= 16

    def test_buffering_improves_fanout_limited_timing(self):
        nl = prepared(HIGH_FANOUT, "hf")
        report_before, _ = analyze(nl, 1.0)
        result = buffer_high_fanout(
            nl, LIB, WL, Constraints(clock_period=1.0), max_fanout=12
        )
        assert result.wns_after > report_before.cps

    def test_buffering_preserves_function(self):
        nl = prepared(HIGH_FANOUT, "hf")
        buffer_high_fanout(nl, LIB, WL, Constraints(clock_period=1.0), max_fanout=8)
        sim = Simulator(nl)
        sim.set_word("a", 12345, 64)
        sim.set_word("b", 67890, 64)
        sim.set_word("sel", 1, 1)
        sim.settle()
        assert sim.get_word("y", 64) == 12345
        sim.set_word("sel", 0, 1)
        sim.settle()
        assert sim.get_word("y", 64) == 67890


class TestRetiming:
    def test_retiming_balances_pipeline(self):
        nl = prepared(IMBALANCED_PIPE, "imb")
        report_before, _ = analyze(nl, 0.6)
        assert report_before.cps < 0  # multiplier stage violates
        result = retime(nl, LIB, WL, Constraints(clock_period=0.6))
        nl.validate()
        assert result.changes > 0
        assert result.wns_after > result.wns_before

    def test_retiming_keeps_latency(self):
        """A retimed pipeline still produces the same result, same cycle."""
        nl = prepared(IMBALANCED_PIPE, "imb")
        golden = prepared(IMBALANCED_PIPE, "imb")
        retime(nl, LIB, WL, Constraints(clock_period=0.6))

        def run(netlist, a, b, cycles=5):
            sim = Simulator(netlist)
            sim.set_word("a", a, 8)
            sim.set_word("b", b, 8)
            outs = []
            for _ in range(cycles):
                sim.step()
                outs.append(sim.get_word("q", 16))
            return outs

        for a, b in [(3, 5), (200, 17), (255, 255)]:
            assert run(nl, a, b) == run(golden, a, b)

    def test_retiming_noop_when_met(self):
        nl = prepared(IMBALANCED_PIPE, "imb")
        result = retime(nl, LIB, WL, Constraints(clock_period=100.0))
        assert result.changes == 0


class TestChainBalancing:
    def test_balancing_reduces_depth(self):
        # A deliberately linear XOR chain.
        src = """
        module chain(input [15:0] a, output y);
          assign y = a[0] ^ a[1] ^ a[2] ^ a[3] ^ a[4] ^ a[5] ^ a[6] ^ a[7]
                   ^ a[8] ^ a[9] ^ a[10] ^ a[11] ^ a[12] ^ a[13] ^ a[14] ^ a[15];
        endmodule
        """
        nl = prepared(src, "chain")
        report_before, _ = analyze(nl, 1.0)
        result = balance_chains(nl, LIB)
        nl.validate()
        assert result.changes >= 1
        report_after, _ = analyze(nl, 1.0)
        assert report_after.cps > report_before.cps

        sim = Simulator(nl)
        for value in (0xFFFF, 0x0001, 0x1234):
            sim.set_word("a", value, 16)
            sim.settle()
            assert sim.values["y"] == bin(value).count("1") % 2

    def test_balancing_skips_short_chains(self):
        src = "module m(input a, b, output y); assign y = a ^ b; endmodule"
        nl = prepared(src, "m")
        assert balance_chains(nl, LIB).changes == 0
