"""Tests for the content-addressed synthesis result cache."""

import threading

import pytest

from repro.designs import get_benchmark
from repro.eval.harness import baseline_script
from repro.synth import ScriptResult, SynthesisCache, default_cache, synthesize_cached
from repro.synth.cache import cache_enabled, synthesis_key


@pytest.fixture
def cache():
    return SynthesisCache(max_entries=4)


def _result(tag="ok"):
    return ScriptResult(success=True, error=None, transcript=[("cmd", tag)])


class TestSynthesisKey:
    def test_deterministic(self):
        a = synthesis_key("lib", "aes", "module m;", "m", "compile")
        b = synthesis_key("lib", "aes", "module m;", "m", "compile")
        assert a == b

    def test_every_component_matters(self):
        base = ("lib", "aes", "module m;", "m", "compile")
        reference = synthesis_key(*base)
        for i in range(len(base)):
            changed = list(base)
            changed[i] = changed[i] + "X"
            assert synthesis_key(*changed) != reference

    def test_none_top_is_stable(self):
        assert synthesis_key("l", "d", "v", None, "s") == synthesis_key(
            "l", "d", "v", None, "s"
        )


class TestSynthesisCache:
    def test_miss_then_hit(self, cache):
        key = synthesis_key("l", "d", "v", None, "s")
        assert cache.get(key) is None
        cache.put(key, _result())
        got = cache.get(key)
        assert got is not None and got.success
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "disk_hits": 0, "disk_writes": 0,
            "capacity": 4, "hit_ratio": 0.5,
        }

    def test_values_are_isolated_copies(self, cache):
        cache.put("k", _result())
        first = cache.get("k")
        first.transcript.append(("evil", "mutation"))
        second = cache.get("k")
        assert second.transcript == [("cmd", "ok")]

    def test_lru_eviction(self, cache):
        for i in range(4):
            cache.put(f"k{i}", _result(str(i)))
        cache.get("k0")  # refresh k0 so k1 is now the oldest
        cache.put("k4", _result("4"))
        assert cache.get("k1") is None
        assert cache.get("k0") is not None
        assert len(cache) == 4

    def test_clear(self, cache):
        cache.put("k", _result())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "disk_hits": 0, "disk_writes": 0,
            "capacity": 4, "hit_ratio": 0.0,
        }

    def test_thread_safety(self, cache):
        errors = []

        def worker(n):
            try:
                for i in range(200):
                    cache.put(f"k{(n + i) % 6}", _result())
                    cache.get(f"k{i % 6}")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 4


class TestCacheGate:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SYNTH_CACHE", raising=False)
        assert cache_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", "OFF"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SYNTH_CACHE", value)
        assert not cache_enabled()

    def test_other_values_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "1")
        assert cache_enabled()


class TestSynthesizeCached:
    def test_second_run_is_a_hit_with_equal_qor(self):
        bench = get_benchmark("dynamic_node")
        script = baseline_script(bench)
        cache = SynthesisCache()
        first = synthesize_cached(
            None, bench.name, bench.verilog, script, top=bench.top, cache=cache
        )
        second = synthesize_cached(
            None, bench.name, bench.verilog, script, top=bench.top, cache=cache
        )
        assert first.success and second.success
        assert cache.stats()["hits"] == 1
        assert second.qor == first.qor

    def test_different_script_misses(self):
        bench = get_benchmark("dynamic_node")
        script = baseline_script(bench)
        cache = SynthesisCache()
        synthesize_cached(
            None, bench.name, bench.verilog, script, top=bench.top, cache=cache
        )
        synthesize_cached(
            None,
            bench.name,
            bench.verilog,
            script + "\nreport_qor",
            top=bench.top,
            cache=cache,
        )
        assert cache.stats()["hits"] == 0
        assert len(cache) == 2

    def test_disabled_cache_reruns(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "0")
        bench = get_benchmark("dynamic_node")
        script = baseline_script(bench)
        cache = SynthesisCache()
        synthesize_cached(
            None, bench.name, bench.verilog, script, top=bench.top, cache=cache
        )
        assert len(cache) == 0

    def test_default_cache_is_shared(self):
        assert default_cache() is default_cache()
