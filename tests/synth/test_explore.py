"""Design-space explorer: parity, determinism and QoR contracts.

The explorer (``repro.synth.explore``) promises:

* ``TimingEngine.trial_metrics_batch`` returns ``(cps, area)`` per
  move-set lane bit-identical to committing that move set and
  measuring, in both the vector and the scalar engine mode;
* ``anneal_chain`` walks the same accepted-move sequence whether it
  scores through the grouped kernel (``REPRO_EXPLORE=1``) or the
  scalar scratch-journal fallback — same final bindings, same QoR;
* the multi-start reduction is bit-identical across the thread and
  process backends and independent of completion order;
* ``explore_sizing`` never worsens the lexicographic
  ``(timing violation, area)`` QoR of its input.

These tests pit the modes against each other on hypothesis-generated
netlists and on the full OpenCores corpus.
"""

import dataclasses
import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import get_benchmark
from repro.designs.opencores import benchmark_names
from repro.hdl import elaborate
from repro.rand import rng as seeded_rng
from repro.synth import (
    Constraints,
    DCShell,
    PassContext,
    explore_sizing,
    get_wireload,
    nangate45,
    sizing_neighbors,
)
from repro.synth.explore import (
    ExploreConfig,
    _score_batch,
    anneal_chain,
    default_budget,
    default_chains,
    explore_enabled,
    reduce_chains,
    run_chains,
)
from repro.synth.techmap import map_to_library

from .test_soa_parity import _engine, random_mapped_netlist

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")
NEIGHBORS = sizing_neighbors(LIBRARY)


def _random_lanes(netlist, rng, count=6, max_gates=3):
    """Randomized multi-gate move sets against the current bindings."""
    sizable = [
        (name, cell.lib_cell)
        for name, cell in netlist.cells.items()
        if cell.lib_cell is not None and NEIGHBORS.get(cell.lib_cell)
    ]
    if not sizable:
        return []
    lanes = []
    for _ in range(count):
        width = min(len(sizable), 1 + rng.randrange(max_gates))
        chosen = {}
        for _ in range(width * 4):
            if len(chosen) >= width:
                break
            name, bound = sizable[rng.randrange(len(sizable))]
            if name in chosen:
                continue
            options = NEIGHBORS[bound]
            chosen[name] = options[rng.randrange(len(options))]
        lanes.append(sorted(chosen.items()))
    return lanes


def _committed_reference(engine, lanes):
    """(cps, area) per lane by committing, measuring and reverting."""
    cells = engine.netlist.cells
    out = []
    for lane in lanes:
        previous = [(cells[name], cells[name].lib_cell) for name, _ in lane]
        for name, lib_name in lane:
            cells[name].lib_cell = lib_name
        out.append((engine.trial_cps(), engine.total_area()))
        for cell, prev in previous:
            cell.lib_cell = prev
    return out


@functools.lru_cache(maxsize=None)
def _mapped_benchmark(name):
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    return netlist, bench.clock_period


class TestTrialMetricsBatch:
    @settings(max_examples=20, deadline=None)
    @given(random_mapped_netlist(), st.integers(0, 2**32 - 1))
    def test_matches_committed_state(self, case, seed):
        """Grouped lanes == commit-measure-revert, vector and scalar."""
        netlist, constraints = case
        lanes = _random_lanes(netlist, seeded_rng(seed, "lanes"))
        if not lanes:
            return
        for vector in (True, False):
            engine = _engine(netlist, constraints, vector)
            engine.analyze(with_paths=False)
            got = engine.trial_metrics_batch(lanes)
            expected = _committed_reference(engine, lanes)
            assert got == expected, ("vector" if vector else "scalar")

    @pytest.mark.parametrize("design", benchmark_names())
    def test_opencores_grouped_matches_fallback(self, design):
        """REPRO_EXPLORE=1 vs =0 scoring: bit-exact CP/area on the full
        corpus for randomized multi-gate move sets."""
        netlist, period = _mapped_benchmark(design)
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period * 0.95)
        engine = _engine(netlist, constraints, True)
        engine.analyze(with_paths=False)
        lanes = _random_lanes(netlist, seeded_rng(0, "corpus", design))
        grouped = _score_batch(engine, lanes, grouped=True)
        fallback = _score_batch(engine, lanes, grouped=False)
        assert grouped == fallback


def _chain_outcome(netlist, constraints, config, seed):
    local = netlist.clone()
    result = anneal_chain(
        local, LIBRARY, WIRELOAD, constraints,
        dataclasses.replace(config, seed=seed),
    )
    return result, {
        name: cell.lib_cell for name, cell in local.cells.items()
    }


class TestAnnealChain:
    @settings(max_examples=10, deadline=None)
    @given(random_mapped_netlist(), st.integers(0, 2**16 - 1))
    def test_grouped_and_fallback_chains_identical(self, case, seed):
        """Same seed, both scoring modes: same walk, same final netlist."""
        netlist, constraints = case
        base = ExploreConfig(budget=16, chains=1, batch=4, max_gates=2)
        grouped, bound_g = _chain_outcome(
            netlist, constraints,
            dataclasses.replace(base, grouped=True), seed,
        )
        fallback, bound_f = _chain_outcome(
            netlist, constraints,
            dataclasses.replace(base, grouped=False), seed,
        )
        assert dataclasses.replace(grouped, grouped=False) == fallback
        assert bound_g == bound_f

    def test_chain_never_worsens_start_state(self):
        netlist, period = _mapped_benchmark("dynamic_node")
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period * 0.6)
        config = ExploreConfig(budget=24, chains=1)
        engine = _engine(netlist, constraints, True)
        start_cps = engine.trial_cps()
        start_area = engine.total_area()
        result = anneal_chain(netlist, LIBRARY, WIRELOAD, constraints, config)
        start_key = (max(0.0, -start_cps), start_area)
        assert result.cost <= start_key
        assert result.trials == 24


class TestMultiStart:
    def test_thread_and_process_backends_identical(self, monkeypatch):
        netlist, period = _mapped_benchmark("riscv32i")
        constraints = Constraints(clock_period=period * 0.7)
        config = ExploreConfig(budget=16, chains=2, batch=8, seed=11)
        outcomes = {}
        for backend in ("thread", "process"):
            monkeypatch.setenv("REPRO_PARALLEL_BACKEND", backend)
            outcomes[backend] = run_chains(
                netlist.clone(), LIBRARY, WIRELOAD, constraints, config,
                jobs=2,
            )
        assert outcomes["thread"] == outcomes["process"]
        assert len(outcomes["thread"]) == 2

    def test_reduction_is_order_independent(self):
        netlist, period = _mapped_benchmark("dynamic_node")
        constraints = Constraints(clock_period=period * 0.7)
        config = ExploreConfig(budget=12, chains=3, seed=4)
        results = run_chains(
            netlist.clone(), LIBRARY, WIRELOAD, constraints, config, jobs=1
        )
        winner = reduce_chains(results)
        assert winner is not None
        for rotation in range(len(results)):
            shuffled = results[rotation:] + results[:rotation]
            assert reduce_chains(shuffled) == winner


class TestGating:
    def test_explore_enabled_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPLORE", raising=False)
        assert explore_enabled()  # default on
        for off in ("0", "false", "no", "off"):
            monkeypatch.setenv("REPRO_EXPLORE", off)
            assert not explore_enabled()
        monkeypatch.setenv("REPRO_EXPLORE", "1")
        assert explore_enabled()

    def test_env_defaults_latched_by_resolved(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPLORE", "0")
        monkeypatch.setenv("REPRO_EXPLORE_CHAINS", "5")
        monkeypatch.setenv("REPRO_EXPLORE_BUDGET", "77")
        config = ExploreConfig().resolved()
        assert (config.grouped, config.chains, config.budget) == (False, 5, 77)
        explicit = ExploreConfig(budget=9, chains=1, grouped=True).resolved()
        assert (explicit.grouped, explicit.chains, explicit.budget) == (True, 1, 9)

    def test_default_helpers(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXPLORE_CHAINS", raising=False)
        monkeypatch.delenv("REPRO_EXPLORE_BUDGET", raising=False)
        assert default_chains() == 2
        assert default_budget() == 240


class TestExploreSizingPass:
    def test_pass_never_worsens_qor(self):
        netlist, period = _mapped_benchmark("riscv32i")
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period * 0.6)
        context = PassContext(netlist, LIBRARY, WIRELOAD, constraints)
        result = explore_sizing(
            netlist, LIBRARY, WIRELOAD, constraints,
            budget=20, seed=2, chains=2, context=context,
        )
        before = (max(0.0, -result.wns_before), result.area_before)
        after = (max(0.0, -result.wns_after), result.area_after)
        assert after <= before

    def test_dcshell_command(self):
        bench = get_benchmark("dynamic_node")
        shell = DCShell()
        shell.add_design("dynamic_node", bench.verilog, bench.top)
        result = shell.run_script(
            "\n".join(
                [
                    "read_verilog dynamic_node",
                    f"create_clock -period {bench.clock_period * 0.6}",
                    "compile",
                    "explore_sizing -budget 16 -chains 1 -seed 3",
                    "report_qor",
                ]
            )
        )
        assert result.success, result.error
        out = next(
            out for line, out in result.transcript
            if line.startswith("explore_sizing")
        )
        assert out.startswith("exploration:")
