"""Atomic on-disk cache write tests (tmp + os.replace).

Process-pool workers and the parent share the frontend/synthesis disk
cache directories; a reader must never observe a torn pickle, and
concurrent writers of the same key must not corrupt each other.
"""

import os
import threading

from repro.synth import ScriptResult, SynthesisCache
from repro.synth.cache import (
    atomic_pickle_read,
    atomic_pickle_write,
    synth_cache_mode,
    synthesis_key,
)


class TestAtomicHelpers:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sub" / "x.pkl")
        assert atomic_pickle_write(path, {"a": [1, 2, 3]})
        assert atomic_pickle_read(path, dict) == {"a": [1, 2, 3]}

    def test_missing_file_is_none(self, tmp_path):
        assert atomic_pickle_read(str(tmp_path / "absent.pkl"), dict) is None

    def test_wrong_type_is_none(self, tmp_path):
        path = str(tmp_path / "x.pkl")
        atomic_pickle_write(path, [1, 2])
        assert atomic_pickle_read(path, dict) is None

    def test_corrupt_file_is_none(self, tmp_path):
        path = str(tmp_path / "x.pkl")
        with open(path, "wb") as fh:
            fh.write(b"\x80\x05 torn mid-write")
        assert atomic_pickle_read(path, dict) is None

    def test_no_tmp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "x.pkl")
        for i in range(10):
            atomic_pickle_write(path, {"round": i})
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_unwritable_directory_returns_false(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        assert not atomic_pickle_write(str(blocker / "x.pkl"), {})


class TestConcurrentStress:
    def test_readers_never_see_torn_writes(self, tmp_path):
        """Hammer one path with racing writers while readers poll it.

        Every successful read must be a complete, valid payload — any
        torn pickle surfaces as ``None`` from a file that exists, which
        the non-atomic write-in-place approach produces readily.
        """
        path = str(tmp_path / "contested.pkl")
        rounds = 150
        payload = {"blob": b"x" * 4096}
        failures: list[str] = []
        stop = threading.Event()

        def writer(seed: int):
            for i in range(rounds):
                atomic_pickle_write(path, dict(payload, seed=seed, round=i))

        def reader():
            while not stop.is_set():
                if os.path.exists(path):
                    value = atomic_pickle_read(path, dict)
                    if value is None:
                        failures.append("torn read")
                    elif value.get("blob") != payload["blob"]:
                        failures.append("partial payload")

        writers = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert failures == []
        final = atomic_pickle_read(path, dict)
        assert final is not None and final["round"] == rounds - 1
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []


class TestSynthCacheDiskLayer:
    def test_mode_resolution(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SYNTH_CACHE", raising=False)
        assert synth_cache_mode() == (True, None)
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "0")
        assert synth_cache_mode() == (False, None)
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "1")
        assert synth_cache_mode() == (True, None)
        monkeypatch.setenv("REPRO_SYNTH_CACHE", str(tmp_path))
        assert synth_cache_mode() == (True, str(tmp_path))

    def test_disk_roundtrip_and_promotion(self, tmp_path):
        disk = str(tmp_path)
        key = synthesis_key("l", "d", "v", None, "s")
        result = ScriptResult(success=True, error=None, transcript=[("c", "r")])
        writer = SynthesisCache(max_entries=4)
        writer.put(key, result, disk_dir=disk)
        assert os.path.exists(os.path.join(disk, f"{key}.result.pkl"))

        # a fresh cache (another process, conceptually) misses memory
        # but is served from disk, then promotes the entry to memory
        fresh = SynthesisCache(max_entries=4)
        first = fresh.get(key, disk_dir=disk)
        assert first is not None and first.success
        assert fresh.stats()["disk_hits"] == 1
        again = fresh.get(key, disk_dir=disk)
        assert again is not None
        assert fresh.stats()["disk_hits"] == 1  # second hit came from memory

    def test_disk_values_are_isolated(self, tmp_path):
        disk = str(tmp_path)
        writer = SynthesisCache(max_entries=4)
        writer.put("k", ScriptResult(True, None, [("c", "r")]), disk_dir=disk)
        fresh = SynthesisCache(max_entries=4)
        got = fresh.get("k", disk_dir=disk)
        got.transcript.append(("evil", "mutation"))
        clean = SynthesisCache(max_entries=4).get("k", disk_dir=disk)
        assert clean.transcript == [("c", "r")]

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        disk = str(tmp_path)
        key = "badkey"
        with open(os.path.join(disk, f"{key}.result.pkl"), "wb") as fh:
            fh.write(b"not a pickle")
        fresh = SynthesisCache(max_entries=4)
        assert fresh.get(key, disk_dir=disk) is None
