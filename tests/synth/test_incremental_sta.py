"""Property-based parity tests: incremental STA == full STA.

The incremental timing kernel promises *exact* agreement with a from-
scratch analysis — identical WNS/CPS/TNS and bit-for-bit identical
endpoint slack dictionaries — after any journaled netlist edit.  These
tests drive randomized edit sequences (gate resizes, which take the
incremental path, and buffer insertions, which force the structural
fallback) over real OpenCores benchmarks and compare a long-lived
engine against a fresh one after every step.
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designs import get_benchmark
from repro.hdl import elaborate
from repro.synth import Constraints, TimingEngine, get_wireload, nangate45
from repro.synth.techmap import map_to_library

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")

# Small benchmarks keep each hypothesis example fast; the full 7-design
# sweep lives in benchmarks/perf/.
DESIGNS = ("dynamic_node", "riscv32i")


@functools.lru_cache(maxsize=None)
def _mapped(name):
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    return netlist, bench.clock_period


def _fresh(name):
    netlist, period = _mapped(name)
    return netlist.clone(), Constraints(clock_period=period)


def _assert_parity(engine, netlist, constraints):
    """The long-lived engine must match a from-scratch engine exactly."""
    incremental = engine.analyze(with_paths=False)
    reference = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints).analyze(
        with_paths=False
    )
    assert incremental.endpoint_slacks == reference.endpoint_slacks
    assert (incremental.wns, incremental.cps, incremental.tns) == (
        reference.wns,
        reference.cps,
        reference.tns,
    )


def _resize(netlist, cell_seed, variant_seed):
    """Apply one random legal resize; return False if none is possible."""
    sized = [c for c in netlist.cells.values() if c.lib_cell is not None]
    if not sized:
        return False
    cell = sized[cell_seed % len(sized)]
    variants = LIBRARY.variants(LIBRARY.cell(cell.lib_cell).function)
    others = [v for v in variants if v.name != cell.lib_cell]
    if not others:
        return False
    cell.lib_cell = others[variant_seed % len(others)].name
    return True


def _insert_buffer(netlist, net_seed):
    """Split one sink off a multi-sink net behind a BUF (structural edit)."""
    candidates = [
        n
        for n in netlist.nets.values()
        if n.sinks and n.driver is not None and not n.is_clock
    ]
    if not candidates:
        return False
    net = candidates[net_seed % len(candidates)]
    sink = sorted(net.sinks)[net_seed % len(net.sinks)]
    if netlist.cells[sink].attrs.get("clock") == net.name:
        return False
    buffered = netlist.add_net()
    buf = netlist.add_cell("BUF", [net.name], buffered.name)
    buf.lib_cell = LIBRARY.weakest("BUF").name
    netlist.rewire_input(sink, net.name, buffered.name)
    return True


@st.composite
def edit_sequences(draw):
    """A design plus 1-12 edits: mostly resizes, some structural."""
    design = draw(st.sampled_from(DESIGNS))
    count = draw(st.integers(min_value=1, max_value=12))
    edits = [
        draw(
            st.one_of(
                st.tuples(
                    st.just("resize"),
                    st.integers(min_value=0, max_value=10_000),
                    st.integers(min_value=0, max_value=10),
                ),
                st.tuples(
                    st.just("buffer"),
                    st.integers(min_value=0, max_value=10_000),
                    st.just(0),
                ),
            )
        )
        for _ in range(count)
    ]
    return design, edits


class TestIncrementalParity:
    @settings(max_examples=25)
    @given(edit_sequences())
    def test_random_edit_sequence_matches_full_sta(self, case):
        design, edits = case
        netlist, constraints = _fresh(design)
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        _assert_parity(engine, netlist, constraints)
        for kind, a, b in edits:
            if kind == "resize":
                _resize(netlist, a, b)
            else:
                _insert_buffer(netlist, a)
            _assert_parity(engine, netlist, constraints)

    @settings(max_examples=10)
    @given(
        st.sampled_from(DESIGNS),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=2,
            max_size=8,
        ),
    )
    def test_batched_resizes_match_full_sta(self, design, resizes):
        """Several resizes between analyze() calls collapse into one
        incremental update; parity must still hold."""
        netlist, constraints = _fresh(design)
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        engine.analyze(with_paths=False)
        for cell_seed, variant_seed in resizes:
            _resize(netlist, cell_seed, variant_seed)
        _assert_parity(engine, netlist, constraints)


class TestIncrementalMechanics:
    def test_resize_takes_incremental_path(self):
        from repro import perf

        netlist, constraints = _fresh("dynamic_node")
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        engine.analyze(with_paths=False)
        assert _resize(netlist, 7, 1)
        perf.reset()
        engine.analyze(with_paths=False)
        assert perf.counter("sta.incremental") == 1
        assert perf.counter("sta.full") == 0

    def test_structural_edit_forces_full_rebuild(self):
        from repro import perf

        netlist, constraints = _fresh("dynamic_node")
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        engine.analyze(with_paths=False)
        assert _insert_buffer(netlist, 3)
        perf.reset()
        engine.analyze(with_paths=False)
        assert perf.counter("sta.full") == 1

    def test_unchanged_netlist_hits_cache(self):
        from repro import perf

        netlist, constraints = _fresh("dynamic_node")
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        engine.analyze(with_paths=False)
        perf.reset()
        engine.analyze(with_paths=False)
        assert perf.counter("sta.cached") == 1

    def test_constraint_change_invalidates(self):
        netlist, constraints = _fresh("dynamic_node")
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        before = engine.analyze(with_paths=False)
        constraints.clock_period = constraints.clock_period * 2
        after = engine.analyze(with_paths=False)
        assert after.wns > before.wns
        _assert_parity(engine, netlist, constraints)

    def test_full_analyze_matches_analyze(self):
        netlist, constraints = _fresh("riscv32i")
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        incr = engine.analyze(with_paths=False)
        full = engine.full_analyze(with_paths=False)
        assert incr.endpoint_slacks == full.endpoint_slacks
        assert (incr.wns, incr.cps, incr.tns) == (full.wns, full.cps, full.tns)

    def test_critical_path_matches_fresh_engine(self):
        netlist, constraints = _fresh("riscv32i")
        engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
        engine.analyze()
        for seed in range(6):
            _resize(netlist, seed * 97, seed)
        incr = engine.analyze()
        ref = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints).analyze()
        assert (incr.critical_path is None) == (ref.critical_path is None)
        if incr.critical_path is not None:
            assert incr.critical_path.points == ref.critical_path.points
            assert incr.critical_path.slack == ref.critical_path.slack
