"""Tests for the activity-propagation power analyzer."""

import pytest

from repro.hdl import elaborate
from repro.synth import Constraints, get_wireload, nangate45
from repro.synth.power import PowerAnalyzer, _prob_out, _sensitivities
from repro.synth.techmap import map_to_library


def analyzer_for(src, top, period=1.0):
    nl = elaborate(src, top)
    map_to_library(nl, nangate45())
    return PowerAnalyzer(
        nl, nangate45(), get_wireload("5K_heavy_1k"), Constraints(clock_period=period)
    )


class TestProbabilityModel:
    def test_and_gate(self):
        assert _prob_out("AND2", [0.5, 0.5]) == pytest.approx(0.25)

    def test_or_gate(self):
        assert _prob_out("OR2", [0.5, 0.5]) == pytest.approx(0.75)

    def test_xor_gate(self):
        assert _prob_out("XOR2", [0.5, 0.5]) == pytest.approx(0.5)

    def test_not_gate(self):
        assert _prob_out("NOT", [0.2]) == pytest.approx(0.8)

    def test_mux_balanced(self):
        assert _prob_out("MUX2", [0.5, 0.0, 1.0]) == pytest.approx(0.5)

    def test_consts(self):
        assert _prob_out("CONST0", []) == 0.0
        assert _prob_out("CONST1", []) == 1.0

    @pytest.mark.parametrize("gate", ["AND2", "OR2", "XOR2", "NAND2", "NOR2"])
    def test_probabilities_bounded(self, gate):
        for pa in (0.0, 0.3, 1.0):
            for pb in (0.0, 0.7, 1.0):
                p = _prob_out(gate, [pa, pb])
                assert 0.0 <= p <= 1.0

    def test_sensitivities_bounded(self):
        for gate in ("AND2", "OR2", "XOR2", "MUX2"):
            n = 3 if gate == "MUX2" else 2
            sens = _sensitivities(gate, [0.4] * n)
            assert all(0.0 <= s <= 1.0 for s in sens)

    def test_and_sensitivity_gated_by_other_input(self):
        # A transition through an AND only propagates when the other
        # input is 1.
        sens = _sensitivities("AND2", [0.5, 0.0])
        assert sens[0] == 0.0


class TestPowerAnalysis:
    COMB = "module m(input [7:0] a, b, output [7:0] y); assign y = a ^ b; endmodule"
    SEQ = """
    module m(input clk, input [7:0] d, output reg [7:0] q);
      always @(posedge clk) q <= d;
    endmodule
    """

    def test_report_components_positive(self):
        report = analyzer_for(self.COMB, "m").analyze()
        assert report.dynamic_uw > 0
        assert report.leakage_uw > 0
        assert report.total_uw > report.dynamic_uw

    def test_clock_power_separated(self):
        report = analyzer_for(self.SEQ, "m").analyze()
        assert report.clock_tree_uw > 0

    def test_zero_activity_zero_switching(self):
        report = analyzer_for(self.COMB, "m").analyze(input_activity=0.0)
        assert report.dynamic_uw == 0.0
        assert report.leakage_uw > 0  # leakage is activity-independent

    def test_power_scales_with_activity(self):
        low = analyzer_for(self.COMB, "m").analyze(input_activity=0.1)
        high = analyzer_for(self.COMB, "m").analyze(input_activity=0.4)
        assert high.dynamic_uw > low.dynamic_uw

    def test_power_scales_with_frequency(self):
        slow = analyzer_for(self.COMB, "m", period=10.0).analyze()
        fast = analyzer_for(self.COMB, "m", period=1.0).analyze()
        assert fast.dynamic_uw > slow.dynamic_uw

    def test_render(self):
        text = analyzer_for(self.SEQ, "m").analyze().render("m")
        assert "Total Power" in text
        assert "Clock Tree" in text

    def test_report_power_command_uses_analyzer(self):
        from repro.synth import DCShell

        shell = DCShell()
        shell.add_design("m", self.SEQ)
        result = shell.run_script(
            "read_verilog m\ncreate_clock -period 1.0 clk\ncompile\nreport_power"
        )
        assert result.success
        power_text = [o for l, o in result.transcript if l == "report_power"][0]
        assert "Net Switching Power" in power_text
