"""Frontend (elaborated netlist) cache: memory layer, disk layer, env gates.

``elaborate_cached`` keys on hash(RTL source, top, params) and hands out
private clones of a pristine cached netlist, so repeated compiles of the
same design skip parsing/elaboration entirely while callers stay free to
mutate their copy.  ``REPRO_FRONTEND_CACHE`` switches the cache off
(``0``-family), keeps the in-memory LRU only (unset/``1``-family), or
names a directory enabling the cross-process pickle layer.
"""

import pickle

import pytest

from repro import perf
from repro.hdl import elaborate
from repro.synth.cache import (
    FrontendCache,
    clear_caches,
    elaborate_cached,
    frontend_cache,
    frontend_cache_mode,
    frontend_key,
    netlist_cache_stats,
)

COUNTER = """
module counter #(parameter WIDTH = 4) (
  input clk,
  input [WIDTH-1:0] d,
  output [WIDTH-1:0] q
);
  reg [WIDTH-1:0] state;
  always @(posedge clk) state <= d ^ state;
  assign q = state;
endmodule
"""

ADDER = """
module adder (input a, input b, output s, output c);
  assign s = a ^ b;
  assign c = a & b;
endmodule
"""


@pytest.fixture(autouse=True)
def _clean_caches(monkeypatch):
    # Pin both gates on so the suite is independent of the ambient
    # environment (CI also runs it with the caches forced off).
    monkeypatch.setenv("REPRO_FRONTEND_CACHE", "1")
    monkeypatch.setenv("REPRO_SYNTH_CACHE", "1")
    clear_caches()
    perf.reset()
    yield
    clear_caches()


class TestKey:
    def test_key_depends_on_source_top_params(self):
        base = frontend_key(COUNTER, "counter")
        assert frontend_key(COUNTER, "counter") == base
        assert frontend_key(ADDER, "adder") != base
        assert frontend_key(COUNTER, None) != base
        assert frontend_key(COUNTER, "counter", {"WIDTH": 8}) != base

    def test_param_order_is_canonical(self):
        a = frontend_key(COUNTER, "counter", {"A": 1, "B": 2})
        b = frontend_key(COUNTER, "counter", {"B": 2, "A": 1})
        assert a == b


class TestMemoryLayer:
    def test_warm_compile_hits_and_matches(self):
        cold = elaborate_cached(COUNTER, "counter")
        warm = elaborate_cached(COUNTER, "counter")
        assert perf.counter("netcache.miss") == 1
        assert perf.counter("netcache.hit") == 1
        assert perf.counter("frontend.hit") == 1
        assert warm.fingerprint() == cold.fingerprint()
        warm.validate()

    def test_hits_are_private_clones(self):
        first = elaborate_cached(ADDER, "adder")
        # Mutating one caller's copy must not leak into the next hit.
        victim = next(iter(first.cells))
        first.remove_cell(victim)
        second = elaborate_cached(ADDER, "adder")
        assert victim in second.cells
        second.validate()

    def test_clone_uid_counter_does_not_collide(self):
        elaborate_cached(ADDER, "adder")
        warm = elaborate_cached(ADDER, "adder")
        fresh_net = warm.add_net()
        assert fresh_net.name not in elaborate(ADDER, "adder").nets
        warm.validate()

    def test_params_are_part_of_the_key(self):
        four = elaborate_cached(COUNTER, "counter", params={"WIDTH": 4})
        eight = elaborate_cached(COUNTER, "counter", params={"WIDTH": 8})
        assert perf.counter("netcache.miss") == 2
        assert len(eight.nets) > len(four.nets)

    def test_lru_eviction_bounds_entries(self):
        cache = FrontendCache(max_entries=2)
        nl = elaborate(ADDER, "adder")
        for i in range(4):
            cache.put(f"k{i}", nl)
        assert len(cache) == 2
        assert cache.get("k0") is None
        assert cache.get("k3") is not None

    def test_stats_provider_shape(self):
        elaborate_cached(ADDER, "adder")
        elaborate_cached(ADDER, "adder")
        stats = netlist_cache_stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1}
        snapshot = perf.snapshot()
        assert snapshot["caches"]["frontend"]["hits"] == 1
        assert snapshot["caches"]["frontend"]["disk_hits"] == 0


class TestEnvGates:
    def test_mode_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FRONTEND_CACHE", raising=False)
        assert frontend_cache_mode() == (True, None)
        for off in ("0", "false", "NO", "off"):
            monkeypatch.setenv("REPRO_FRONTEND_CACHE", off)
            assert frontend_cache_mode() == (False, None)
        for on in ("1", "true", "YES", "on", ""):
            monkeypatch.setenv("REPRO_FRONTEND_CACHE", on)
            assert frontend_cache_mode() == (True, None)
        monkeypatch.setenv("REPRO_FRONTEND_CACHE", "/tmp/fe-cache")
        assert frontend_cache_mode() == (True, "/tmp/fe-cache")

    def test_disabled_frontend_cache_always_elaborates(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTEND_CACHE", "0")
        elaborate_cached(ADDER, "adder")
        elaborate_cached(ADDER, "adder")
        assert perf.counter("netcache.hit") == 0
        assert perf.counter("netcache.miss") == 0
        assert len(frontend_cache()) == 0

    def test_synth_cache_gate_also_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SYNTH_CACHE", "0")
        elaborate_cached(ADDER, "adder")
        elaborate_cached(ADDER, "adder")
        assert len(frontend_cache()) == 0


class TestDiskLayer:
    def test_disk_round_trip_across_processes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTEND_CACHE", str(tmp_path))
        cold = elaborate_cached(COUNTER, "counter")
        assert perf.counter("frontend.disk_write") == 1
        pickles = list(tmp_path.glob("*.netlist.pkl"))
        assert len(pickles) == 1
        # A fresh process has an empty memory layer but finds the pickle.
        frontend_cache().clear()
        warm = elaborate_cached(COUNTER, "counter")
        assert perf.counter("frontend.disk_hit") == 1
        assert warm.fingerprint() == cold.fingerprint()
        warm.validate()
        # ...and the disk hit re-populates the memory layer.
        elaborate_cached(COUNTER, "counter")
        assert perf.counter("frontend.disk_hit") == 1

    def test_unpickled_netlist_keeps_working(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTEND_CACHE", str(tmp_path))
        elaborate_cached(COUNTER, "counter")
        frontend_cache().clear()
        warm = elaborate_cached(COUNTER, "counter")
        # Journal/uid state is rebuilt on unpickle: new nets and cells get
        # non-colliding names and structural edits still journal cleanly.
        before = warm.version
        net = warm.add_net()
        warm.add_cell("BUF", [next(iter(warm.primary_inputs))], net.name)
        assert warm.version > before
        warm.validate()

    def test_corrupt_pickle_falls_back_to_elaboration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTEND_CACHE", str(tmp_path))
        key = frontend_key(ADDER, "adder")
        (tmp_path / f"{key}.netlist.pkl").write_bytes(b"not a pickle")
        netlist = elaborate_cached(ADDER, "adder")
        netlist.validate()
        assert perf.counter("frontend.disk_hit") == 0
        assert perf.counter("netcache.miss") == 1

    def test_non_netlist_pickle_is_rejected(self, tmp_path):
        cache = FrontendCache()
        key = "deadbeef"
        with open(tmp_path / f"{key}.netlist.pkl", "wb") as fh:
            pickle.dump({"not": "a netlist"}, fh)
        assert cache.get(key, str(tmp_path)) is None
