"""Cross-mode parity: vectorized SoA STA/power == scalar engines.

The SoA kernels (``repro.synth.soa``) promise *exact* agreement with the
scalar :class:`TimingEngine` / :class:`PowerAnalyzer` sweeps — identical
WNS/CPS/TNS, bit-for-bit identical endpoint-slack dictionaries and net
activities — on any mapped netlist, including after journal-driven gate
resizes served through the incremental vector path.  These tests pit the
two modes against each other on hypothesis-generated random netlists
(combinational DAGs plus register feedback loops) and on real OpenCores
benchmarks.

Mode selection is normally latched from ``REPRO_VECTOR_STA`` at engine
construction; the tests force ``_use_vector`` directly so both modes run
in one process regardless of the environment.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.designs import get_benchmark
from repro.hdl import elaborate
from repro.hdl.netlist import Netlist
from repro.synth import (
    Constraints,
    PowerAnalyzer,
    TimingEngine,
    get_wireload,
    nangate45,
)
from repro.synth.techmap import map_to_library

LIBRARY = nangate45()
WIRELOAD = get_wireload("5K_heavy_1k")

_GATES = ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2", "NOT", "BUF", "MUX2"]


@st.composite
def random_mapped_netlist(draw, max_gates=30, num_inputs=5, max_regs=4):
    """A random mapped netlist: comb DAG + registers (with feedback)."""
    netlist = Netlist("rand")
    netlist.add_net("clk", is_input=True, is_clock=True)
    nets = []
    for i in range(num_inputs):
        netlist.add_net(f"in{i}", is_input=True)
        nets.append(f"in{i}")
    num_regs = draw(st.integers(0, max_regs))
    # Register outputs participate in the comb cone below; their D inputs
    # are rewired afterwards to late nets, closing reg->comb->reg loops.
    regs = []
    for r in range(num_regs):
        q = f"q{r}"
        netlist.add_cell("DFF", [draw(st.sampled_from(nets))], q, clock="clk")
        regs.append(netlist.driver_cell(q))
        nets.append(q)
    num_gates = draw(st.integers(3, max_gates))
    for g in range(num_gates):
        gate = draw(st.sampled_from(_GATES))
        arity = {"NOT": 1, "BUF": 1, "MUX2": 3}.get(gate, 2)
        inputs = [draw(st.sampled_from(nets)) for _ in range(arity)]
        out = f"g{g}"
        netlist.add_cell(gate, inputs, out)
        nets.append(out)
    for reg in regs:
        target = draw(st.sampled_from(nets))
        if target != reg.inputs[0]:
            netlist.rewire_input(reg.name, reg.inputs[0], target)
    out_count = draw(st.integers(1, 2))
    for i in range(out_count):
        src = nets[-(i + 1)]
        port = netlist.add_net(f"out{i}", is_output=True)
        netlist.add_cell("BUF", [src], port.name)
    map_to_library(netlist, LIBRARY)
    netlist.validate()
    period = draw(st.sampled_from([0.05, 0.2, 1.0]))
    return netlist, Constraints(clock_period=period)


def _engine(netlist, constraints, vector):
    engine = TimingEngine(netlist, LIBRARY, WIRELOAD, constraints)
    engine._use_vector = vector
    return engine


def _power(netlist, constraints, vector):
    analyzer = PowerAnalyzer(netlist, LIBRARY, WIRELOAD, constraints)
    analyzer._use_vector = vector
    return analyzer


def _assert_reports_match(vec, ref):
    assert vec.endpoint_slacks == ref.endpoint_slacks
    assert (vec.wns, vec.cps, vec.tns) == (ref.wns, ref.cps, ref.tns)
    assert (vec.critical_path is None) == (ref.critical_path is None)
    if vec.critical_path is not None:
        assert vec.critical_path.points == ref.critical_path.points
        assert vec.critical_path.slack == ref.critical_path.slack


def _resize(netlist, cell_seed, variant_seed):
    sized = [c for c in netlist.cells.values() if c.lib_cell is not None]
    if not sized:
        return False
    cell = sized[cell_seed % len(sized)]
    variants = LIBRARY.variants(LIBRARY.cell(cell.lib_cell).function)
    others = [v for v in variants if v.name != cell.lib_cell]
    if not others:
        return False
    cell.lib_cell = others[variant_seed % len(others)].name
    return True


@functools.lru_cache(maxsize=None)
def _mapped_benchmark(name):
    bench = get_benchmark(name)
    netlist = elaborate(bench.verilog, bench.top)
    map_to_library(netlist, LIBRARY)
    return netlist, bench.clock_period


class TestRandomNetlistParity:
    @settings(max_examples=30, deadline=None)
    @given(random_mapped_netlist())
    def test_full_sta_matches_scalar(self, case):
        netlist, constraints = case
        vec = _engine(netlist, constraints, True).full_analyze()
        ref = _engine(netlist, constraints, False).full_analyze()
        _assert_reports_match(vec, ref)

    @settings(max_examples=20, deadline=None)
    @given(
        random_mapped_netlist(),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_journal_resizes_match_scalar(self, case, resizes):
        """Resizes flow through the incremental vector path; parity must
        hold against a from-scratch scalar engine after every batch."""
        netlist, constraints = case
        engine = _engine(netlist, constraints, True)
        engine.analyze(with_paths=False)
        for cell_seed, variant_seed in resizes:
            _resize(netlist, cell_seed, variant_seed)
            vec = engine.analyze()
            ref = _engine(netlist, constraints, False).full_analyze()
            _assert_reports_match(vec, ref)

    @settings(max_examples=25, deadline=None)
    @given(
        random_mapped_netlist(),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=2.0),
    )
    def test_power_matches_scalar(self, case, p_in, a_in):
        netlist, constraints = case
        vec = _power(netlist, constraints, True).analyze(p_in, a_in)
        ref = _power(netlist, constraints, False).analyze(p_in, a_in)
        assert vec.net_activities == ref.net_activities
        # Whole-design sums differ only by numpy pairwise- vs sequential-
        # summation ulps, but the report rounds to 3 decimals, so a sum
        # sitting on a rounding boundary may land one step apart.
        for field in ("dynamic_uw", "internal_uw", "leakage_uw", "clock_tree_uw"):
            assert getattr(vec, field) == pytest.approx(
                getattr(ref, field), abs=1.001e-3
            ), field


class TestBenchmarkParity:
    @pytest.mark.parametrize("design", ["dynamic_node", "riscv32i"])
    def test_full_sta_matches_scalar(self, design):
        netlist, period = _mapped_benchmark(design)
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period)
        vec = _engine(netlist, constraints, True).analyze()
        ref = _engine(netlist, constraints, False).analyze()
        _assert_reports_match(vec, ref)

    @pytest.mark.parametrize("design", ["dynamic_node", "riscv32i"])
    def test_incremental_resizes_match_scalar(self, design):
        netlist, period = _mapped_benchmark(design)
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period)
        engine = _engine(netlist, constraints, True)
        engine.analyze(with_paths=False)
        for seed in range(12):
            _resize(netlist, seed * 131, seed)
            vec = engine.analyze()
            ref = _engine(netlist, constraints, False).full_analyze()
            _assert_reports_match(vec, ref)

    @pytest.mark.parametrize("design", ["dynamic_node", "riscv32i"])
    def test_power_matches_scalar(self, design):
        netlist, period = _mapped_benchmark(design)
        constraints = Constraints(clock_period=period)
        vec = _power(netlist, constraints, True).analyze()
        ref = _power(netlist, constraints, False).analyze()
        assert vec.net_activities == ref.net_activities
        assert (vec.dynamic_uw, vec.internal_uw, vec.leakage_uw, vec.clock_tree_uw) == (
            ref.dynamic_uw,
            ref.internal_uw,
            ref.leakage_uw,
            ref.clock_tree_uw,
        )


class TestVectorMechanics:
    def test_vector_resize_takes_incremental_path(self):
        netlist, period = _mapped_benchmark("dynamic_node")
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period)
        engine = _engine(netlist, constraints, True)
        engine.analyze(with_paths=False)
        assert _resize(netlist, 7, 1)
        perf.reset()
        engine.analyze(with_paths=False)
        assert perf.counter("sta.incremental") == 1
        assert perf.counter("sta.vector_incremental") == 1
        assert perf.counter("sta.full") == 0

    def test_structure_cache_shared_across_engines(self):
        from repro.synth import soa

        netlist, period = _mapped_benchmark("dynamic_node")
        netlist = netlist.clone()
        constraints = Constraints(clock_period=period)
        perf.reset()
        _engine(netlist, constraints, True).analyze(with_paths=False)
        _engine(netlist, constraints, True).analyze(with_paths=False)
        assert perf.counter("soa.structure_miss") == 1
        assert perf.counter("soa.structure_hit") >= 1
        stats = soa.structure_cache_stats()
        assert stats["entries"] >= 1

    def test_power_fixpoint_early_exit_fires(self):
        """A feed-forward pipeline stabilises after one register sweep; the
        second comb sweep is skipped and the counter records it, in both
        scalar and vector mode, without changing the result."""
        netlist = Netlist("pipe")
        netlist.add_net("clk", is_input=True, is_clock=True)
        netlist.add_net("in0", is_input=True)
        netlist.add_net("in1", is_input=True)
        netlist.add_cell("DFF", ["in0"], "q", clock="clk")
        out = netlist.add_net("out0", is_output=True)
        netlist.add_cell("AND2", ["q", "in1"], out.name)
        map_to_library(netlist, LIBRARY)
        constraints = Constraints(clock_period=1.0)
        perf.reset()
        scalar = _power(netlist, constraints, False).analyze()
        assert perf.counter("power.fixpoint_early_exit") == 1
        vector = _power(netlist, constraints, True).analyze()
        assert perf.counter("power.fixpoint_early_exit") == 2
        assert scalar.net_activities == vector.net_activities

    def test_power_feedback_loop_runs_both_iterations(self):
        """reg -> AND -> reg feedback shifts P(q) from 0.5 to 0.25 on the
        second register sweep, so the early exit must not trigger."""
        netlist = Netlist("loop")
        netlist.add_net("clk", is_input=True, is_clock=True)
        netlist.add_net("in0", is_input=True)
        netlist.add_cell("DFF", ["a"], "q", clock="clk")
        netlist.add_cell("AND2", ["q", "in0"], "a")
        out = netlist.add_net("out0", is_output=True)
        netlist.add_cell("BUF", ["a"], out.name)
        map_to_library(netlist, LIBRARY)
        constraints = Constraints(clock_period=1.0)
        perf.reset()
        scalar = _power(netlist, constraints, False).analyze()
        assert perf.counter("power.fixpoint_early_exit") == 0
        vector = _power(netlist, constraints, True).analyze()
        assert perf.counter("power.fixpoint_early_exit") == 0
        assert scalar.net_activities == vector.net_activities
