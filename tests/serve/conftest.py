"""Shared fixtures for the serving-engine suite: a tiny corpus + requests."""

from __future__ import annotations

import pickle

import pytest

from repro.core import ChatLS
from repro.designs.chipyard import generate_family_variant
from repro.designs.database import ExpertDatabase
from repro.llm import chatls_core
from repro.mentor import CircuitEncoder
from repro.serve import ServeRequest


def _baseline(design) -> str:
    return "\n".join(
        [
            f"read_verilog {design.name}",
            f"current_design {design.name}",
            "link",
            "create_clock -period 1.0 clk",
            "compile",
        ]
    )


def _make_requests(evaluate: bool = True) -> list[ServeRequest]:
    """Three sessions over distinct designs and rerank characteristics."""
    specs = [
        ("rocket", 3, "fix the negative slack and improve timing"),
        ("sha3", 4, "reduce area"),
        ("gemmini", 5, "cut leakage power"),
    ]
    requests = []
    for seed, (family, variant, text) in enumerate(specs):
        design = generate_family_variant(family, variant)
        requests.append(
            ServeRequest(
                verilog=design.verilog,
                design_name=design.name,
                baseline_script=_baseline(design),
                requirement=text,
                top=design.top,
                clock_period=1.2,
                seed=seed,
                evaluate=evaluate,
            )
        )
    return requests


def _sequential_results(chatls: ChatLS, requests, evaluate: bool = True):
    """The ground truth: a plain sequential loop over the same requests."""
    out = []
    for request in requests:
        kwargs = dict(
            verilog=request.verilog,
            design_name=request.design_name,
            baseline_script=request.baseline_script,
            requirement=request.requirement,
            tool_report=request.tool_report,
            top=request.top,
            clock_period=request.clock_period,
            seed=request.seed,
        )
        if evaluate:
            out.append(chatls.customize_and_evaluate(**kwargs))
        else:
            out.append(chatls.customize(**kwargs))
    return out


def _assert_identical(served, expected) -> None:
    """Bit-identical per-session outputs: script, trace, QoR, prompt, flags."""
    assert len(served) == len(expected)
    for index, (got, want) in enumerate(zip(served, expected)):
        assert got.script == want.script, f"session {index}: script differs"
        assert pickle.dumps(got.trace) == pickle.dumps(
            want.trace
        ), f"session {index}: trace differs"
        assert got.prompt == want.prompt, f"session {index}: prompt differs"
        assert pickle.dumps(got.qor) == pickle.dumps(
            want.qor
        ), f"session {index}: QoR differs"
        assert got.executable == want.executable, f"session {index}: executable"
        assert got.error == want.error, f"session {index}: error"
        assert got.seed == want.seed, f"session {index}: seed"


@pytest.fixture(scope="package")
def tiny_database():
    db = ExpertDatabase(CircuitEncoder(seed=0))
    for family in ("rocket", "sha3"):
        db.add_design(
            generate_family_variant(family, 0),
            strategies=["baseline_compile", "ultra_retime"],
        )
    return db


@pytest.fixture(scope="package")
def chatls(tiny_database):
    return ChatLS(tiny_database, llm=chatls_core())


@pytest.fixture(scope="package")
def make_requests():
    return _make_requests


@pytest.fixture(scope="package")
def sequential_results():
    return _sequential_results


@pytest.fixture(scope="package")
def assert_identical():
    return _assert_identical


@pytest.fixture(scope="package")
def expected_results(chatls):
    """Sequential customize_and_evaluate over the standard request set."""
    return _sequential_results(chatls, _make_requests())
