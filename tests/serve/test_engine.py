"""Serving-engine behavior: parity, coalescing, policy, metrics, ledger."""

from __future__ import annotations

import json

import pytest

from repro.core import ChatLS
from repro.obs import metrics as obs_metrics
from repro.obs.ledger import load_manifest
from repro.serve import BatchPolicy, ServeEngine, ServeRequest
from repro.serve.engine import _serve_metric_families


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.batch_max >= 1
        assert policy.batch_wait_ms >= 0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "7")
        monkeypatch.setenv("REPRO_SERVE_BATCH_WAIT_MS", "1.5")
        policy = BatchPolicy.from_env()
        assert policy.batch_max == 7
        assert policy.batch_wait_ms == 1.5

    def test_env_unset_uses_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_BATCH_MAX", raising=False)
        monkeypatch.delenv("REPRO_SERVE_BATCH_WAIT_MS", raising=False)
        assert BatchPolicy.from_env() == BatchPolicy()

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "many")
        with pytest.raises(ValueError, match="REPRO_SERVE_BATCH_MAX"):
            BatchPolicy.from_env()

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            BatchPolicy(batch_max=0)
        with pytest.raises(ValueError):
            BatchPolicy(batch_wait_ms=-1)


class TestServeParity:
    def test_matches_sequential_loop(
        self, chatls, make_requests, expected_results, assert_identical
    ):
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        served = engine.run(make_requests())
        assert_identical(served, expected_results)
        # Every session went through every stage exactly once.
        assert engine.stage_sessions == {
            "analyze": 3, "retrieve": 3, "draft": 3, "revise": 3, "synthesize": 3,
        }

    def test_coalesces_concurrent_sessions(self, chatls, make_requests):
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=50))
        engine.run(make_requests())
        # All three sessions arrive at once and fit one batch per stage.
        for name in ("retrieve", "draft", "revise"):
            assert engine.batchers[name].batch_count == 1, name
            assert engine.batchers[name].max_batch == 3, name

    def test_batch_max_one_is_sequential_batching(
        self, chatls, make_requests, expected_results, assert_identical
    ):
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=1, batch_wait_ms=0))
        served = engine.run(make_requests())
        assert_identical(served, expected_results)
        assert engine.batchers["retrieve"].max_batch == 1
        assert engine.batchers["retrieve"].batch_count == 3

    def test_no_evaluate_matches_customize(
        self, chatls, make_requests, sequential_results, assert_identical
    ):
        requests = make_requests(evaluate=False)
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        served = engine.run(requests)
        assert_identical(
            served, sequential_results(chatls, requests, evaluate=False)
        )
        assert all(result.qor is None for result in served)
        assert engine.stage_sessions["synthesize"] == 0

    def test_empty_run(self, chatls):
        assert ServeEngine(chatls).run([]) == []

    def test_process_backend(
        self, chatls, make_requests, expected_results, assert_identical
    ):
        from repro.parallel import shutdown_pools

        engine = ServeEngine(
            chatls,
            policy=BatchPolicy(batch_max=8, batch_wait_ms=5),
            backend="process",
            jobs=2,
        )
        try:
            served = engine.run(make_requests())
        finally:
            shutdown_pools()
        assert_identical(served, expected_results)


class TestAblationParity:
    """The serve path must honour the paper's ablation switches."""

    def test_no_rag(self, tiny_database, make_requests, sequential_results,
                    assert_identical):
        from repro.llm import chatls_core

        ablated = ChatLS(tiny_database, llm=chatls_core(), use_rag=False)
        requests = make_requests()
        engine = ServeEngine(ablated, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        assert_identical(
            engine.run(requests), sequential_results(ablated, requests)
        )

    def test_no_synthexpert(self, tiny_database, make_requests, sequential_results,
                            assert_identical):
        from repro.llm import chatls_core

        ablated = ChatLS(tiny_database, llm=chatls_core(), use_synthexpert=False)
        requests = make_requests()
        engine = ServeEngine(ablated, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        served = engine.run(requests)
        assert_identical(served, sequential_results(ablated, requests))
        assert all(len(result.trace.steps) == 0 for result in served)


class TestServeObservability:
    def test_batch_size_histogram_recorded(self, chatls, make_requests):
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        engine.run(make_requests())
        rendered = obs_metrics.render()
        assert "repro_serve_batch_size_bucket" in rendered
        assert 'stage="retrieve"' in rendered

    def test_gauges_collectable(self, chatls, make_requests):
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        engine.run(make_requests())
        families = {family.name: family for family in _serve_metric_families()}
        assert "repro_serve_inflight_sessions" in families
        assert families["repro_serve_inflight_sessions"].samples[0].value == 0
        assert "repro_serve_queue_depth" in families

    def test_stage_timers_feed_perf(self, chatls, make_requests):
        from repro import perf

        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        engine.run(make_requests())
        timers = perf.snapshot()["timers"]
        for stage in ("analyze", "retrieve", "draft", "revise", "synthesize"):
            assert f"serve.{stage}" in timers, stage

    def test_run_ledger_manifest(self, chatls, make_requests, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path))
        engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5))
        engine.run(make_requests())
        manifests = sorted(tmp_path.glob("*.json"))
        assert manifests, "no manifest recorded"
        manifest = load_manifest(str(manifests[-1]))
        assert manifest["label"] == "serve"
        serve = manifest["extra"]
        assert serve["sessions"] == 3
        assert serve["throughput_sessions_per_s"] > 0
        assert serve["stages"]["retrieve"]["sessions"] == 3
        assert any(name.startswith("serve.") for name in manifest["stages"])
        json.dumps(manifest)  # manifest stays JSON-serializable
