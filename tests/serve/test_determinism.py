"""Hypothesis: serving is bit-identical to sequential under any schedule.

Randomized arrival orders and batching policies must never change any
session's result: micro-batching alters the *schedule* of the pipeline,
not its computation.  The same property is asserted over both executor
backends (thread here; process in its own seeded test — pool spawn is
too expensive per hypothesis example).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import BatchPolicy, ServeEngine

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(
    delays=st.permutations([0.0, 0.002, 0.004]),
    batch_max=st.sampled_from([1, 2, 3, 8]),
    wait_ms=st.sampled_from([0.0, 2.0, 20.0]),
)
@SETTINGS
def test_arrival_order_and_policy_invariance(
    chatls, make_requests, expected_results, assert_identical,
    delays, batch_max, wait_ms,
):
    engine = ServeEngine(
        chatls, policy=BatchPolicy(batch_max=batch_max, batch_wait_ms=wait_ms)
    )
    served = engine.run(make_requests(), arrival_delays=list(delays))
    assert_identical(served, expected_results)


@given(delays=st.permutations([0.0, 0.002, 0.004]))
@SETTINGS
def test_arrival_order_invariance_process_backend_fallback(
    chatls, make_requests, expected_results, assert_identical, delays
):
    """Thread fan-out inside the stage executor, randomized arrivals."""
    engine = ServeEngine(
        chatls,
        policy=BatchPolicy(batch_max=3, batch_wait_ms=10.0),
        backend="thread",
        jobs=3,
    )
    served = engine.run(make_requests(), arrival_delays=list(delays))
    assert_identical(served, expected_results)


def test_permuted_arrivals_process_backend(
    chatls, make_requests, expected_results, assert_identical
):
    """One seeded arrival permutation through the warm process pool."""
    from repro.parallel import shutdown_pools

    engine = ServeEngine(
        chatls,
        policy=BatchPolicy(batch_max=3, batch_wait_ms=10.0),
        backend="process",
        jobs=2,
    )
    try:
        served = engine.run(
            make_requests(), arrival_delays=[0.004, 0.0, 0.002]
        )
    finally:
        shutdown_pools()
    assert_identical(served, expected_results)


def test_repeated_runs_identical(chatls, make_requests, assert_identical):
    """Two serve runs of the same requests agree with each other."""
    engine = ServeEngine(chatls, policy=BatchPolicy(batch_max=8, batch_wait_ms=5.0))
    first = engine.run(make_requests())
    second = engine.run(make_requests())
    assert_identical(second, first)
