"""Batched retrieval parity: search_batch routing must preserve rankings.

Raw scores out of a stacked GEMM may differ from the scalar path in the
last ulp (shape-dependent BLAS kernels), so the contract asserted here is
the one results actually depend on: identical hit *ordering* (keys) with
scores equal to within 1e-12 relative — plus bit-exact GNN embeddings,
where grouping invariance is exact by construction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.designs.chipyard import generate_family_variant
from repro.llm import chatls_core
from repro.mentor import build_circuit_graph
from repro.rag.retrievers import EmbeddingRetriever, ManualRetriever
from repro.rag.rerank import LLMReranker
from repro.rag.synthrag import SynthRAG

QUERIES = [
    "fix the negative slack and improve timing",
    "reduce cell area",
    "balance high fanout nets with buffers",
    "retime registers across pipeline stages",
]


def _approx_scores(batch_hits, loop_hits):
    for got, want in zip(batch_hits, loop_hits):
        assert got.score == pytest.approx(want.score, rel=1e-12)


class TestManualRetrieverBatch:
    @pytest.mark.parametrize("ann", ["0", "1"])
    def test_matches_single_query_loop(self, monkeypatch, ann):
        monkeypatch.setenv("REPRO_ANN", ann)
        retriever = ManualRetriever()
        batch = retriever.retrieve_batch(QUERIES, k=3)
        for row, query in enumerate(QUERIES):
            single = retriever.retrieve(query, k=3)
            assert [h.command for h in batch[row]] == [h.command for h in single]
            assert [h.text for h in batch[row]] == [h.text for h in single]
            _approx_scores(batch[row], single)

    def test_matches_with_llm_reranker(self):
        retriever = ManualRetriever(reranker=LLMReranker(chatls_core()))
        batch = retriever.retrieve_batch(QUERIES, k=2)
        for row, query in enumerate(QUERIES):
            single = retriever.retrieve(query, k=2)
            assert [h.command for h in batch[row]] == [h.command for h in single]

    def test_empty_and_singleton(self):
        retriever = ManualRetriever()
        assert retriever.retrieve_batch([]) == []
        batch = retriever.retrieve_batch([QUERIES[0]], k=3)
        single = retriever.retrieve(QUERIES[0], k=3)
        assert [h.command for h in batch[0]] == [h.command for h in single]
        # Singleton batches take the scalar search path: scores bit-equal.
        assert [h.score for h in batch[0]] == [h.score for h in single]


class TestEmbeddingRetrieverBatch:
    def test_designs_batch_matches_loop(self, tiny_database):
        retriever = EmbeddingRetriever(tiny_database)
        queries = np.stack(
            [entry.embedding for entry in tiny_database.entries.values()]
        )
        rows = retriever.retrieve_designs_batch(queries, k=2)
        for row in range(queries.shape[0]):
            single = retriever.retrieve_designs(queries[row], k=2)
            assert [h.key for h in rows[row]] == [h.key for h in single]
            _approx_scores(rows[row], single)

    def test_per_query_characteristics(self, tiny_database):
        retriever = EmbeddingRetriever(tiny_database)
        queries = np.stack(
            [entry.embedding for entry in tiny_database.entries.values()]
        )
        characteristics = ["area"] * queries.shape[0]
        rows = retriever.retrieve_designs_batch(
            queries, k=2, characteristics=characteristics
        )
        for row in range(queries.shape[0]):
            retriever.characteristic = "area"
            single = retriever.retrieve_designs(queries[row], k=2)
            retriever.characteristic = "cps"
            assert [h.key for h in rows[row]] == [h.key for h in single]

    def test_characteristics_length_validated(self, tiny_database):
        retriever = EmbeddingRetriever(tiny_database)
        queries = np.stack(
            [entry.embedding for entry in tiny_database.entries.values()]
        )
        with pytest.raises(ValueError, match="characteristics"):
            retriever.retrieve_designs_batch(queries, characteristics=["cps"] * 99)

    def test_strategies_batch_matches_loop(self, tiny_database):
        retriever = EmbeddingRetriever(tiny_database)
        queries = np.stack(
            [entry.embedding for entry in tiny_database.entries.values()]
        )
        rows = retriever.retrieve_strategies_batch(queries, k=2)
        for row in range(queries.shape[0]):
            single = retriever.retrieve_strategies(queries[row], k=2)
            assert [(h.design, h.strategy) for h in rows[row]] == [
                (h.design, h.strategy) for h in single
            ]


class TestSynthRAGBatch:
    def test_manual_batch_matches_manual(self, tiny_database):
        rag = SynthRAG.build(tiny_database, llm=chatls_core())
        rows = rag.manual_batch(QUERIES, k=2)
        for row, query in enumerate(QUERIES):
            single = rag.manual(query, k=2)
            assert [h.command for h in rows[row]] == [h.command for h in single]
            assert [h.text for h in rows[row]] == [h.text for h in single]

    def test_build_shares_manual_retriever(self, tiny_database):
        shared = ManualRetriever()
        rag_a = SynthRAG.build(tiny_database, manual_retriever=shared)
        rag_b = SynthRAG.build(tiny_database, manual_retriever=shared)
        assert rag_a.manual_retriever is shared
        assert rag_b.manual_retriever is shared


class TestGroupedEmbeddings:
    def test_embed_designs_bit_exact_vs_loop(self, tiny_database):
        encoder = tiny_database.encoder
        circuits = []
        for family, variant in (("rocket", 7), ("sha3", 8), ("gemmini", 9)):
            design = generate_family_variant(family, variant)
            circuits.append(
                build_circuit_graph(design.verilog, design.name, top=design.top)
            )
        grouped = encoder.embed_designs(circuits)
        for index, (circuit, embedding) in enumerate(zip(circuits, grouped)):
            single = encoder.embed_design(circuit)
            assert np.array_equal(embedding, single), f"circuit {index}"

    def test_database_search_designs_batch_matches_loop(self, tiny_database):
        queries = np.stack(
            [entry.embedding for entry in tiny_database.entries.values()]
        )
        rows = tiny_database.search_designs(queries, k=2)
        for row in range(queries.shape[0]):
            single = tiny_database.design_index.search(queries[row], k=2)
            assert [h.key for h in rows[row]] == [h.key for h in single]
            _approx_scores(rows[row], single)

    def test_database_search_modules_batch_matches_loop(self, tiny_database):
        entry = next(iter(tiny_database.entries.values()))
        queries = np.stack(list(entry.module_embeddings.values()))
        rows = tiny_database.search_modules(queries, k=2)
        for row in range(queries.shape[0]):
            single = tiny_database.module_index.search(queries[row], k=2)
            assert [h.key for h in rows[row]] == [h.key for h in single]
