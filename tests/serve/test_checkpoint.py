"""ChainState checkpointing: atomic writes, crash injection, partial resume."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.serve import STAGES, BatchPolicy, ChainState, ServeEngine, ServeRequest


class _InjectedCrash(RuntimeError):
    pass


def _checkpoint_paths(directory) -> list[str]:
    return sorted(
        str(directory / name)
        for name in os.listdir(directory)
        if name.endswith(".ckpt")
    )


class TestChainState:
    def test_advance_walks_all_stages(self):
        state = ChainState(request=ServeRequest("v", "d", "b", "improve timing"))
        seen = []
        while state.stage != "done":
            seen.append(state.stage)
            state.advance()
        assert tuple(seen) == STAGES
        assert state.completed == STAGES
        with pytest.raises(ValueError):
            state.advance()

    def test_no_evaluate_skips_synthesize(self):
        state = ChainState(
            request=ServeRequest("v", "d", "b", "improve timing", evaluate=False)
        )
        assert state.stages() == STAGES[:-1]
        assert "synthesize" not in state.remaining()

    def test_result_requires_completion(self):
        state = ChainState(request=ServeRequest("v", "d", "b", "improve timing"))
        with pytest.raises(ValueError, match="not finished"):
            state.result()

    def test_save_load_roundtrip(self, tmp_path):
        state = ChainState(request=ServeRequest("v", "d", "b", "improve timing"))
        state.advance()
        path = str(tmp_path / "s.ckpt")
        state.save(path)
        loaded = ChainState.load(path)
        assert pickle.dumps(loaded) == pickle.dumps(state)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_save_is_atomic_under_write_failure(self, tmp_path, monkeypatch):
        """A failed overwrite leaves the previous checkpoint intact."""
        path = str(tmp_path / "s.ckpt")
        first = ChainState(request=ServeRequest("v", "d", "b", "improve timing"))
        first.save(path)

        second = ChainState(request=ServeRequest("v2", "d2", "b2", "reduce area"))
        import repro.serve.state as state_mod

        def explode(obj, fh):
            fh.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(state_mod.pickle, "dump", explode)
        with pytest.raises(OSError, match="disk full"):
            second.save(path)
        monkeypatch.undo()

        survivor = ChainState.load(path)
        assert survivor.request.design_name == "d"
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_load_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(pickle.dumps({"not": "a chain state"}))
        with pytest.raises(ValueError, match="not a ChainState"):
            ChainState.load(str(path))


class TestCrashResume:
    @pytest.mark.parametrize("crash_after", ["analyze", "retrieve", "draft", "revise"])
    def test_kill_after_stage_resumes_remaining_only(
        self, chatls, make_requests, expected_results, assert_identical,
        tmp_path, crash_after,
    ):
        engine = ServeEngine(
            chatls,
            policy=BatchPolicy(batch_max=8, batch_wait_ms=5.0),
            checkpoint_dir=str(tmp_path),
        )

        def bomb(state, stage):
            if stage == crash_after:
                raise _InjectedCrash(f"killed after {stage}")

        engine._after_stage = bomb
        with pytest.raises(_InjectedCrash):
            engine.run(make_requests())

        paths = _checkpoint_paths(tmp_path)
        assert len(paths) == 3
        completed_through = STAGES[: STAGES.index(crash_after) + 1]
        for path in paths:
            state = ChainState.load(path)
            assert state.completed == completed_through

        fresh = ServeEngine(
            chatls,
            policy=BatchPolicy(batch_max=8, batch_wait_ms=5.0),
            checkpoint_dir=str(tmp_path),
        )
        resumed = fresh.resume(paths)
        assert_identical(resumed, expected_results)
        # Completed stages were NOT re-run; remaining stages ran for all.
        for stage in completed_through:
            assert fresh.stage_sessions[stage] == 0, stage
        for stage in STAGES[STAGES.index(crash_after) + 1:]:
            assert fresh.stage_sessions[stage] == 3, stage

    def test_kill_after_draft_runs_only_revise_synthesize(
        self, chatls, make_requests, expected_results, assert_identical, tmp_path
    ):
        """The ISSUE's acceptance scenario, spelled out end to end."""
        engine = ServeEngine(
            chatls,
            policy=BatchPolicy(batch_max=8, batch_wait_ms=5.0),
            checkpoint_dir=str(tmp_path),
        )

        def bomb(state, stage):
            if stage == "draft":
                raise _InjectedCrash("killed after draft")

        engine._after_stage = bomb
        with pytest.raises(_InjectedCrash):
            engine.run(make_requests())

        fresh = ServeEngine(chatls, checkpoint_dir=str(tmp_path))
        resumed = fresh.resume(_checkpoint_paths(tmp_path))
        assert fresh.stage_sessions == {
            "analyze": 0, "retrieve": 0, "draft": 0, "revise": 3, "synthesize": 3,
        }
        assert_identical(resumed, expected_results)

    def test_completed_checkpoint_resumes_to_result(
        self, chatls, make_requests, expected_results, assert_identical, tmp_path
    ):
        engine = ServeEngine(
            chatls,
            policy=BatchPolicy(batch_max=8, batch_wait_ms=5.0),
            checkpoint_dir=str(tmp_path),
        )
        first = engine.run(make_requests())
        assert_identical(first, expected_results)

        fresh = ServeEngine(chatls)
        resumed = fresh.resume(_checkpoint_paths(tmp_path))
        assert_identical(resumed, expected_results)
        assert all(count == 0 for count in fresh.stage_sessions.values())
