"""Tests for the offline text embedders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textembed import HashingEmbedder, TfidfModel, char_ngrams, word_tokens


class TestTokenizer:
    def test_word_tokens_lowercase(self):
        assert word_tokens("Set_Max_Delay applies TO paths") == [
            "set_max_delay",
            "applies",
            "paths",
        ]

    def test_stopwords_removed(self):
        assert "the" not in word_tokens("the retiming command")

    def test_stopwords_kept_when_asked(self):
        assert "the" in word_tokens("the retiming command", drop_stopwords=False)

    def test_char_ngrams_boundaries(self):
        grams = char_ngrams("ab", n_min=3, n_max=3)
        assert grams == ["<ab", "ab>"]

    def test_char_ngrams_cover_token(self):
        grams = char_ngrams("retime")
        assert "<re" in grams
        assert "me>" in grams


class TestHashingEmbedder:
    def test_deterministic(self):
        e = HashingEmbedder(dim=64)
        np.testing.assert_allclose(e.embed("compile ultra"), e.embed("compile ultra"))

    def test_normalized(self):
        e = HashingEmbedder(dim=64)
        assert np.linalg.norm(e.embed("retiming improves slack")) == pytest.approx(1.0)

    def test_empty_text_is_zero(self):
        e = HashingEmbedder(dim=64)
        assert np.linalg.norm(e.embed("")) == 0.0

    def test_similar_texts_closer_than_dissimilar(self):
        e = HashingEmbedder(dim=256)
        a = e.embed("retiming moves registers across combinational logic")
        b = e.embed("the retiming command relocates registers in logic")
        c = e.embed("wireload models estimate interconnect capacitance")
        assert a @ b > a @ c

    def test_subwords_connect_morphology(self):
        with_sub = HashingEmbedder(dim=256, use_subwords=True)
        without = HashingEmbedder(dim=256, use_subwords=False)
        sim_with = with_sub.embed("retime") @ with_sub.embed("retiming")
        sim_without = without.embed("retime") @ without.embed("retiming")
        assert sim_with > sim_without

    def test_idf_downweights_common_terms(self):
        corpus = [f"command overview number {i}" for i in range(20)]
        corpus.append("retiming specifics")
        e = HashingEmbedder(dim=256).fit_idf(corpus)
        # 'command' appears everywhere, 'retiming' once: a query for
        # retiming must match the retiming doc better than any boilerplate.
        q = e.embed("retiming command")
        boiler = e.embed(corpus[0])
        specific = e.embed(corpus[-1])
        assert q @ specific > q @ boiler

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashingEmbedder(dim=0)

    def test_embed_batch_shape(self):
        e = HashingEmbedder(dim=32)
        out = e.embed_batch(["a b", "c d", "e f"])
        assert out.shape == (3, 32)
        assert e.embed_batch([]).shape == (0, 32)

    @given(st.text(alphabet="abcdefg ", min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_norm_bounded(self, text):
        e = HashingEmbedder(dim=64)
        assert np.linalg.norm(e.embed(text)) <= 1.0 + 1e-9


class TestTfidf:
    CORPUS = [
        "retiming moves registers to balance pipeline stages",
        "buffer insertion fixes high fanout nets",
        "compile ultra enables aggressive timing optimization",
        "wireload models approximate net capacitance before layout",
    ]

    def test_rank_retrieves_topical_document(self):
        model = TfidfModel().fit(self.CORPUS)
        top, _ = model.rank("how to balance registers with retiming", k=1)[0]
        assert top == 0

    def test_rank_scores_descending(self):
        model = TfidfModel().fit(self.CORPUS)
        scores = [s for _, s in model.rank("timing optimization", k=4)]
        assert scores == sorted(scores, reverse=True)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfModel().transform("query")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TfidfModel().fit([])

    def test_out_of_vocabulary_query(self):
        model = TfidfModel().fit(self.CORPUS)
        results = model.rank("zzz qqq xxx", k=2)
        assert all(s == 0.0 for _, s in results)
