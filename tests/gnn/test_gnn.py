"""Tests for the numpy GNN framework, including numeric gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import SGD, Adam, GraphData, GraphSAGE, SAGELayer, mean_adjacency


def chain_graph(n=4, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return GraphData(
        features=rng.normal(size=(n, dim)),
        edges=[(i, i + 1) for i in range(n - 1)],
    )


class TestAdjacency:
    def test_rows_sum_to_one(self):
        adj = mean_adjacency(4, [(0, 1), (1, 2), (2, 3)])
        np.testing.assert_allclose(adj.sum(axis=1), 1.0)

    def test_undirected_by_default(self):
        adj = mean_adjacency(2, [(0, 1)], self_loops=False)
        assert adj[0, 1] > 0 and adj[1, 0] > 0

    def test_directed(self):
        adj = mean_adjacency(2, [(0, 1)], directed=True, self_loops=False)
        assert adj[1, 0] > 0 and adj[0, 1] == 0

    def test_isolated_node_gets_self_loop(self):
        adj = mean_adjacency(3, [(0, 1)])
        assert adj[2, 2] == 1.0

    def test_graphdata_validates_edges(self):
        g = GraphData(features=np.zeros((2, 2)), edges=[(0, 5)])
        with pytest.raises(ValueError):
            g.validate()


class TestSAGELayer:
    def test_output_shape(self):
        layer = SAGELayer(3, 5)
        g = chain_graph()
        adj = mean_adjacency(g.num_nodes, g.edges)
        out = layer.forward(g.features, adj)
        assert out.shape == (4, 5)

    def test_unknown_activation_rejected(self):
        with pytest.raises(ValueError):
            SAGELayer(3, 5, activation="swish")

    def test_backward_before_forward_raises(self):
        layer = SAGELayer(3, 5)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((4, 5)))

    def test_gradient_check_weights(self):
        """Compare analytic gradients with finite differences."""
        rng = np.random.default_rng(1)
        layer = SAGELayer(3, 4, activation="tanh", rng=rng)
        g = chain_graph(seed=1)
        adj = mean_adjacency(g.num_nodes, g.edges)
        target = rng.normal(size=(4, 4))

        def loss():
            out = layer.forward(g.features, adj)
            return 0.5 * np.sum((out - target) ** 2)

        out = layer.forward(g.features, adj)
        layer.zero_grad()
        layer.backward(out - target)

        eps = 1e-6
        for param, grad in [
            (layer.w_self, layer.grad_w_self),
            (layer.w_neigh, layer.grad_w_neigh),
            (layer.bias, layer.grad_bias),
        ]:
            flat_param = param.reshape(-1)
            flat_grad = grad.reshape(-1)
            for idx in range(0, flat_param.size, max(1, flat_param.size // 5)):
                original = flat_param[idx]
                flat_param[idx] = original + eps
                up = loss()
                flat_param[idx] = original - eps
                down = loss()
                flat_param[idx] = original
                numeric = (up - down) / (2 * eps)
                assert flat_grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_gradient_check_inputs(self):
        rng = np.random.default_rng(2)
        layer = SAGELayer(3, 3, activation="tanh", rng=rng)
        g = chain_graph(seed=2)
        adj = mean_adjacency(g.num_nodes, g.edges)
        target = rng.normal(size=(4, 3))
        out = layer.forward(g.features, adj)
        grad_in = layer.backward(out - target)

        eps = 1e-6
        features = g.features
        for i in (0, 2):
            for j in (0, 1):
                original = features[i, j]
                features[i, j] = original + eps
                up = 0.5 * np.sum((layer.forward(features, adj) - target) ** 2)
                features[i, j] = original - eps
                down = 0.5 * np.sum((layer.forward(features, adj) - target) ** 2)
                features[i, j] = original
                numeric = (up - down) / (2 * eps)
                assert grad_in[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)


class TestGraphSAGE:
    def test_embedding_shape(self):
        model = GraphSAGE(in_dim=3, hidden_dims=(8, 6))
        emb = model.embed_graph(chain_graph())
        assert emb.shape == (6,)
        assert model.embedding_dim == 6

    def test_single_node_graph(self):
        model = GraphSAGE(in_dim=3, hidden_dims=(4,))
        g = GraphData(features=np.ones((1, 3)), edges=[])
        emb = model.embed_graph(g)
        assert emb.shape == (4,)
        assert np.all(np.isfinite(emb))

    def test_deterministic_given_seed(self):
        a = GraphSAGE(in_dim=3, hidden_dims=(4,), seed=7)
        b = GraphSAGE(in_dim=3, hidden_dims=(4,), seed=7)
        g = chain_graph()
        np.testing.assert_allclose(a.embed_graph(g), b.embed_graph(g))

    def test_permutation_invariance_of_pooling(self):
        """Relabeling nodes must not change the pooled embedding."""
        model = GraphSAGE(in_dim=3, hidden_dims=(5,), seed=0)
        g = chain_graph(n=5, seed=3)
        perm = np.array([4, 2, 0, 3, 1])
        inverse = np.argsort(perm)
        g_perm = GraphData(
            features=g.features[perm],
            edges=[(int(inverse[a]), int(inverse[b])) for a, b in g.edges],
        )
        np.testing.assert_allclose(
            model.embed_graph(g), model.embed_graph(g_perm), atol=1e-10
        )

    def test_model_gradient_check(self):
        rng = np.random.default_rng(5)
        model = GraphSAGE(in_dim=3, hidden_dims=(4, 3), activation="tanh", seed=5)
        g = chain_graph(seed=5)
        target = rng.normal(size=3)

        def loss():
            return 0.5 * np.sum((model.embed_graph(g) - target) ** 2)

        emb = model.embed_graph(g)
        model.zero_grad()
        model.backward_graph(emb - target)
        grads = [g_.copy() for g_ in model.gradients]

        eps = 1e-6
        for p_idx, param in enumerate(model.parameters):
            flat = param.reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 3)):
                original = flat[idx]
                flat[idx] = original + eps
                up = loss()
                flat[idx] = original - eps
                down = loss()
                flat[idx] = original
                numeric = (up - down) / (2 * eps)
                assert grads[p_idx].reshape(-1)[idx] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-6
                )

    def test_state_dict_round_trip(self):
        model = GraphSAGE(in_dim=3, hidden_dims=(4,), seed=0)
        state = model.state_dict()
        g = chain_graph()
        before = model.embed_graph(g)
        model.parameters[0][:] += 1.0
        model.load_state_dict(state)
        np.testing.assert_allclose(model.embed_graph(g), before)

    def test_backward_before_forward_raises(self):
        model = GraphSAGE(in_dim=3, hidden_dims=(4,))
        with pytest.raises(RuntimeError):
            model.backward_graph(np.zeros(4))

    def test_empty_hidden_dims_rejected(self):
        with pytest.raises(ValueError):
            GraphSAGE(in_dim=3, hidden_dims=())


class TestOptimizers:
    def quadratic_setup(self):
        param = np.array([5.0, -3.0])
        grad = np.zeros_like(param)
        return param, grad

    def test_sgd_converges_on_quadratic(self):
        param, grad = self.quadratic_setup()
        opt = SGD([param], [grad], lr=0.1)
        for _ in range(200):
            grad[:] = param  # d/dx (x^2/2)
            opt.step()
        assert np.linalg.norm(param) < 1e-4

    def test_sgd_momentum_accelerates(self):
        param1, grad1 = self.quadratic_setup()
        param2, grad2 = self.quadratic_setup()
        plain = SGD([param1], [grad1], lr=0.01)
        momentum = SGD([param2], [grad2], lr=0.01, momentum=0.9)
        for _ in range(50):
            grad1[:] = param1
            plain.step()
            grad2[:] = param2
            momentum.step()
        assert np.linalg.norm(param2) < np.linalg.norm(param1)

    def test_adam_converges_on_quadratic(self):
        param, grad = self.quadratic_setup()
        opt = Adam([param], [grad], lr=0.1)
        for _ in range(400):
            grad[:] = param
            opt.step()
        assert np.linalg.norm(param) < 1e-3

    def test_invalid_lr_rejected(self):
        param, grad = self.quadratic_setup()
        with pytest.raises(ValueError):
            SGD([param], [grad], lr=0.0)
        with pytest.raises(ValueError):
            Adam([param], [grad], lr=-1.0)

    @given(st.floats(0.01, 0.3))
    @settings(max_examples=10, deadline=None)
    def test_sgd_step_direction_decreases_loss(self, lr):
        param = np.array([2.0])
        grad = np.array([2.0])  # gradient of x^2 at x=2 is 4, but any +grad works
        before = param[0] ** 2
        SGD([param], [grad], lr=lr).step()
        assert param[0] ** 2 < before


class TestSAGELayerCacheDiscipline:
    """Satellite: clear errors when backward is called without a cache."""

    def test_backward_twice_after_one_forward_raises(self):
        layer = SAGELayer(3, 5)
        g = chain_graph()
        adj = mean_adjacency(g.num_nodes, g.edges)
        layer.forward(g.features, adj)
        layer.backward(np.zeros((g.num_nodes, 5)))
        with pytest.raises(RuntimeError, match="matching forward"):
            layer.backward(np.zeros((g.num_nodes, 5)))

    def test_forward_forward_backward_uses_latest_cache(self):
        rng = np.random.default_rng(3)
        layer = SAGELayer(3, 5, rng=rng)
        g1 = chain_graph(n=4, seed=1)
        g2 = chain_graph(n=6, seed=2)
        adj2 = mean_adjacency(g2.num_nodes, g2.edges)
        layer.forward(g1.features, mean_adjacency(g1.num_nodes, g1.edges))
        layer.forward(g2.features, adj2)
        grad_in = layer.backward(np.ones((g2.num_nodes, 5)))
        assert grad_in.shape == g2.features.shape

    def test_model_backward_twice_raises(self):
        model = GraphSAGE(in_dim=3, hidden_dims=(4,), seed=0)
        model.embed_graph(chain_graph())
        model.backward_graph(np.zeros(4))
        with pytest.raises(RuntimeError):
            model.backward_graph(np.zeros(4))

    def test_reentrant_api_keeps_layer_cache_intact(self):
        """forward_reentrant/backward_reentrant never touch layer state."""
        layer = SAGELayer(3, 5)
        g = chain_graph()
        adj = mean_adjacency(g.num_nodes, g.edges)
        layer.forward(g.features, adj)  # arm the stateful cache
        out, cache = layer.forward_reentrant(g.features, adj @ g.features)
        layer.backward_reentrant(np.ones_like(out), cache)
        # Stateful backward still works: the re-entrant calls above must
        # not have consumed or clobbered the layer's own cache.
        layer.backward(np.zeros((g.num_nodes, 5)))


class TestEmbeddingCache:
    def fresh_model(self, seed=0):
        return GraphSAGE(in_dim=3, hidden_dims=(5, 4), seed=seed)

    def test_repeat_embed_hits_cache(self, monkeypatch):
        from repro.gnn.batch import embedding_cache

        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "1")
        model = self.fresh_model()
        graphs = [chain_graph(seed=s) for s in range(3)]
        first = model.embed_graphs(graphs)
        hits_before = embedding_cache.hits
        second = model.embed_graphs(graphs)
        assert embedding_cache.hits == hits_before + len(graphs)
        np.testing.assert_array_equal(first, second)

    def test_load_state_dict_invalidates(self, monkeypatch):
        from repro.gnn.batch import embedding_cache

        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "1")
        model = self.fresh_model()
        graphs = [chain_graph(seed=9)]
        model.embed_graphs(graphs)
        version = model.version
        model.load_state_dict(model.state_dict())
        assert model.version > version
        hits_before = embedding_cache.hits
        model.embed_graphs(graphs)
        assert embedding_cache.hits == hits_before  # stale key: miss, not hit

    def test_optimizer_step_invalidates(self, monkeypatch):
        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "1")
        model = self.fresh_model(seed=4)
        opt = Adam(model.parameters, model.gradients, on_step=model.bump_version)
        graph = chain_graph(seed=4)
        before = model.embed_graphs([graph])[0]
        model.embed_graph(graph)
        model.backward_graph(np.ones(model.embedding_dim))
        opt.step()
        after = model.embed_graphs([graph])[0]
        # Version bumped, so the cache may not serve the pre-step embedding.
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after, model.embed_graph(graph))

    def test_cache_disabled_by_env(self, monkeypatch):
        from repro.gnn.batch import embedding_cache

        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
        model = self.fresh_model(seed=5)
        graphs = [chain_graph(seed=5)]
        hits_before = embedding_cache.hits
        entries_before = len(embedding_cache)
        model.embed_graphs(graphs)
        model.embed_graphs(graphs)
        assert embedding_cache.hits == hits_before
        assert len(embedding_cache) == entries_before

    def test_stats_provider_registered(self):
        from repro import perf

        snapshot = perf.registry.snapshot()
        stats = snapshot["caches"]["gnn_embed"]
        assert set(stats) >= {"enabled", "entries", "hits", "misses", "evictions"}

    def test_cached_rows_are_copies(self, monkeypatch):
        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "1")
        model = self.fresh_model(seed=6)
        graph = chain_graph(seed=6)
        first = model.embed_graphs([graph])
        first[0, 0] = 1e9  # mutate the returned row
        second = model.embed_graphs([graph])[0]
        np.testing.assert_array_equal(second, model.embed_graph(graph))
