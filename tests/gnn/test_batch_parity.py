"""Cross-mode parity suite for the batched GNN engine.

The contract (see ``repro.gnn.batch``): batched forward embeddings and
hand-derived backward parameter gradients are *bit-exact* against the
scalar per-graph path — hypothesis-generated random graphs (including
one-node graphs, which exercise the single-row BLAS fixup), plus the
seven OpenCores designs' module dataflow graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn import GraphBatch, GraphData, GraphSAGE, mean_adjacency
from repro.gnn.batch import (
    _dense_mean_block,
    batched_backward,
    batched_forward,
    embed_graphs_cached,
)

FEAT_DIM = 6


def random_graphs(seed: int, num_graphs: int) -> list[GraphData]:
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(num_graphs):
        n = int(rng.integers(1, 10))
        num_edges = int(rng.integers(0, 3 * n))
        edges = [
            (int(rng.integers(n)), int(rng.integers(n))) for _ in range(num_edges)
        ]
        graphs.append(GraphData(features=rng.normal(size=(n, FEAT_DIM)), edges=edges))
    return graphs


def scalar_embed(model: GraphSAGE, graphs: list[GraphData]) -> np.ndarray:
    return np.vstack([model.embed_graph(g) for g in graphs])


def scalar_backward(model, graphs, grad_embeddings) -> list[np.ndarray]:
    model.zero_grad()
    for graph, grad in zip(graphs, grad_embeddings):
        model.embed_graph(graph)
        model.backward_graph(grad)
    return [g.copy() for g in model.gradients]


class TestAdjacencyBuilder:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_vectorized_block_matches_mean_adjacency(self, seed):
        (graph,) = random_graphs(seed, 1)
        expected = mean_adjacency(graph.num_nodes, graph.edges)
        np.testing.assert_array_equal(_dense_mean_block(graph), expected)

    def test_duplicate_and_self_edges_collapse_identically(self):
        graph = GraphData(
            features=np.ones((3, FEAT_DIM)),
            edges=[(0, 1), (0, 1), (1, 0), (2, 2)],
        )
        np.testing.assert_array_equal(
            _dense_mean_block(graph), mean_adjacency(3, graph.edges)
        )


class TestBatchPacking:
    def test_offsets_and_segments(self):
        graphs = random_graphs(0, 4)
        batch = GraphBatch(graphs)
        counts = [g.num_nodes for g in graphs]
        assert batch.total_nodes == sum(counts)
        # Internal layout is size-sorted (stable), with `order` mapping
        # storage slots back to the caller's graph indices.
        assert list(batch.counts) == sorted(counts)
        assert sorted(batch.order) == list(range(len(graphs)))
        assert [counts[i] for i in batch.order] == list(batch.counts)
        assert list(np.diff(batch.offsets)) == list(batch.counts)
        assert list(batch.segment_ids) == [
            int(g) for g, c in zip(batch.order, batch.counts) for _ in range(c)
        ]

    def test_groups_partition_nodes(self):
        graphs = random_graphs(3, 6)
        batch = GraphBatch(graphs)
        covered = []
        seen_graphs = []
        for grp in batch.groups:
            assert grp.blocks.shape == (grp.size, grp.n, grp.n)
            assert grp.end - grp.start == grp.size * grp.n
            covered.extend(range(grp.start, grp.end))
            seen_graphs.extend(int(i) for i in grp.orig)
        assert covered == list(range(batch.total_nodes))
        assert sorted(seen_graphs) == list(range(len(graphs)))
        sizes = [grp.n for grp in batch.groups]
        assert sizes == sorted(sizes) and len(set(sizes)) == len(sizes)

    def test_csr_matches_dense_blocks(self):
        graphs = random_graphs(7, 3)
        batch = GraphBatch(graphs)
        indptr, indices, weights = batch.csr
        dense = np.zeros((batch.total_nodes, batch.total_nodes))
        for row in range(batch.total_nodes):
            cols = indices[indptr[row]:indptr[row + 1]]
            dense[row, cols] = weights[indptr[row]:indptr[row + 1]]
        expected = np.zeros_like(dense)
        for _g, start, end, block in batch.iter_blocks():
            expected[start:end, start:end] = block
        np.testing.assert_array_equal(dense, expected)
        assert batch.nnz == int(np.count_nonzero(expected))

    def test_mismatched_feature_dims_rejected(self):
        graphs = [
            GraphData(features=np.ones((2, 3))),
            GraphData(features=np.ones((2, 4))),
        ]
        with pytest.raises(ValueError):
            GraphBatch(graphs)


class TestForwardParity:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_embeddings_bit_exact(self, seed, num_graphs):
        graphs = random_graphs(seed, num_graphs)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(7, 4), seed=seed % 97)
        expected = scalar_embed(model, graphs)
        batched, _ = batched_forward(model, GraphBatch(graphs), keep_state=False)
        np.testing.assert_array_equal(batched, expected)

    def test_single_node_graphs_bit_exact(self):
        """One-node graphs take numpy's single-row BLAS path — the fixup
        must reproduce it exactly inside a larger batch."""
        graphs = [
            GraphData(features=np.random.default_rng(i).normal(size=(1, FEAT_DIM)))
            for i in range(3)
        ] + random_graphs(5, 2)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(8, 5), seed=2)
        expected = scalar_embed(model, graphs)
        batched, _ = batched_forward(model, GraphBatch(graphs), keep_state=False)
        np.testing.assert_array_equal(batched, expected)

    def test_tanh_activation_parity(self):
        graphs = random_graphs(11, 4)
        model = GraphSAGE(
            in_dim=FEAT_DIM, hidden_dims=(6, 6, 3), activation="tanh", seed=4
        )
        expected = scalar_embed(model, graphs)
        batched, _ = batched_forward(model, GraphBatch(graphs), keep_state=False)
        np.testing.assert_array_equal(batched, expected)


class TestBackwardParity:
    @given(st.integers(0, 2**32 - 1), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_gradients_bit_exact(self, seed, num_graphs):
        graphs = random_graphs(seed, num_graphs)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(7, 4), seed=seed % 89)
        grads_out = np.random.default_rng(seed ^ 0xBEEF).normal(
            size=(num_graphs, model.embedding_dim)
        )
        expected = scalar_backward(model, graphs, grads_out)
        model.zero_grad()
        _, state = batched_forward(model, GraphBatch(graphs))
        batched_backward(model, state, grads_out)
        for got, want in zip(model.gradients, expected):
            np.testing.assert_array_equal(got, want)

    def test_backward_shape_mismatch_rejected(self):
        graphs = random_graphs(3, 2)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(4,), seed=0)
        _, state = batched_forward(model, GraphBatch(graphs))
        with pytest.raises(ValueError):
            batched_backward(model, state, np.zeros((3, model.embedding_dim)))

    def test_reentrant_states_do_not_clobber(self):
        """Two in-flight batches backprop correctly in either order."""
        graphs_a = random_graphs(21, 2)
        graphs_b = random_graphs(22, 3)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(6, 4), seed=1)
        rng = np.random.default_rng(0)
        grads_a = rng.normal(size=(2, model.embedding_dim))
        grads_b = rng.normal(size=(3, model.embedding_dim))

        expected_a = scalar_backward(model, graphs_a, grads_a)
        expected_b = scalar_backward(model, graphs_b, grads_b)

        _, state_a = batched_forward(model, GraphBatch(graphs_a))
        _, state_b = batched_forward(model, GraphBatch(graphs_b))
        model.zero_grad()
        batched_backward(model, state_b, grads_b)
        for got, want in zip(model.gradients, expected_b):
            np.testing.assert_array_equal(got, want)
        model.zero_grad()
        batched_backward(model, state_a, grads_a)
        for got, want in zip(model.gradients, expected_a):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("seed", [5, 29])
    def test_order_override_matches_reordered_scalar_loop(self, seed):
        """``order=perm`` accumulates like a scalar loop over ``perm``."""
        graphs = random_graphs(seed, 6)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(7, 4), seed=2)
        rng = np.random.default_rng(seed)
        grads_out = rng.normal(size=(6, model.embedding_dim))
        perm = rng.permutation(6)

        expected = scalar_backward(
            model, [graphs[i] for i in perm], grads_out[perm]
        )
        model.zero_grad()
        _, state = batched_forward(model, GraphBatch(graphs))
        batched_backward(model, state, grads_out, order=perm)
        for got, want in zip(model.gradients, expected):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("seed", [7, 31])
    def test_slots_order_matches_size_sorted_scalar_loop(self, seed):
        """``order="slots"`` accumulates in the batch's internal order."""
        from repro.gnn import accumulation_order

        graphs = random_graphs(seed, 6)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(7, 4), seed=3)
        grads_out = np.random.default_rng(seed).normal(
            size=(6, model.embedding_dim)
        )
        slot = accumulation_order([g.num_nodes for g in graphs])
        expected = scalar_backward(
            model, [graphs[i] for i in slot], grads_out[slot]
        )
        model.zero_grad()
        batch = GraphBatch(graphs)
        np.testing.assert_array_equal(batch.order, slot)
        _, state = batched_forward(model, batch)
        batched_backward(model, state, grads_out, order="slots")
        for got, want in zip(model.gradients, expected):
            np.testing.assert_array_equal(got, want)

    def test_unknown_order_string_rejected(self):
        graphs = random_graphs(11, 2)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(4,), seed=0)
        _, state = batched_forward(model, GraphBatch(graphs))
        with pytest.raises(ValueError, match="accumulation order"):
            batched_backward(
                model, state, np.zeros((2, model.embedding_dim)), order="rows"
            )


class TestModeRouting:
    def test_embed_graphs_parity_across_modes(self, monkeypatch):
        graphs = random_graphs(13, 5)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(7, 4), seed=6)
        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
        monkeypatch.setenv("REPRO_BATCH_GNN", "1")
        batched = model.embed_graphs(graphs)
        monkeypatch.setenv("REPRO_BATCH_GNN", "0")
        scalar = model.embed_graphs(graphs)
        np.testing.assert_array_equal(batched, scalar)
        np.testing.assert_array_equal(scalar, scalar_embed(model, graphs))

    def test_duplicate_graph_objects_share_one_forward(self, monkeypatch):
        monkeypatch.setenv("REPRO_GNN_EMBED_CACHE", "0")
        (graph,) = random_graphs(17, 1)
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(4,), seed=0)
        out = embed_graphs_cached(model, [graph, graph, graph])
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[0], out[2])
        np.testing.assert_array_equal(out[0], model.embed_graph(graph))

    def test_empty_list(self):
        model = GraphSAGE(in_dim=FEAT_DIM, hidden_dims=(4,), seed=0)
        assert model.embed_graphs([]).shape == (0, 4)


class TestOpenCoresParity:
    def test_seven_designs_module_graphs_bit_exact(self):
        from repro.designs.opencores import benchmark_names, get_benchmark
        from repro.mentor.circuit_graph import build_circuit_graph

        graphs = []
        for name in benchmark_names():
            bench = get_benchmark(name)
            circuit = build_circuit_graph(bench.verilog, name, top=bench.top)
            graphs.extend(circuit.module_graphs.values())
        assert graphs
        feat_dim = graphs[0].features.shape[1]
        model = GraphSAGE(in_dim=feat_dim, hidden_dims=(48, 32), seed=0)
        expected = scalar_embed(model, graphs)
        batched, state = batched_forward(model, GraphBatch(graphs))
        np.testing.assert_array_equal(batched, expected)

        grads_out = np.random.default_rng(1).normal(size=batched.shape)
        expected_grads = scalar_backward(model, graphs, grads_out)
        model.zero_grad()
        batched_backward(model, state, grads_out)
        for got, want in zip(model.gradients, expected_grads):
            np.testing.assert_array_equal(got, want)
