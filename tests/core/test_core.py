"""Tests for the ChatLS core: requirements, SynthExpert, Generator, facade."""

import pytest

from repro.core import (
    ChatLS,
    Requirement,
    SynthExpert,
    parse_requirement,
)
from repro.core.chatls import _better_timing
from repro.designs.chipyard import generate_family_variant
from repro.designs.database import ExpertDatabase
from repro.llm import chatls_core
from repro.mentor import CircuitEncoder, build_circuit_graph
from repro.rag import SynthRAG
from repro.synth.reports import QoRSnapshot


@pytest.fixture(scope="module")
def tiny_database():
    db = ExpertDatabase(CircuitEncoder(seed=0))
    for family in ("rocket", "sha3"):
        db.add_design(
            generate_family_variant(family, 0),
            strategies=["baseline_compile", "ultra_retime"],
        )
    return db


@pytest.fixture(scope="module")
def rag(tiny_database):
    design = generate_family_variant("rocket", 2)
    circuit = build_circuit_graph(design.verilog, design.name, top=design.top)
    return SynthRAG.build(tiny_database, circuit=circuit, llm=chatls_core())


class TestRequirementParsing:
    def test_timing_requirement(self):
        req = parse_requirement("Fix the negative slack and improve timing")
        assert req.objective == "timing"
        assert req.rerank_characteristic == "cps"

    def test_area_requirement(self):
        req = parse_requirement("make the design smaller, reduce area")
        assert req.objective == "area"
        assert req.rerank_characteristic == "area"

    def test_power_requirement(self):
        req = parse_requirement("cut leakage power")
        assert req.objective == "power"

    def test_default_objective_is_timing(self):
        assert parse_requirement("make it better please").objective == "timing"

    def test_keep_timing_guard(self):
        assert parse_requirement("reduce area").keep_timing
        assert not parse_requirement("reduce area, ignore timing").keep_timing


class TestSynthExpert:
    def refine(self, rag, script):
        expert = SynthExpert(chatls_core(), rag)
        return expert.refine(script)

    def test_valid_script_unchanged_commands(self, rag):
        script = "create_clock -period 1.0 clk\ncompile_ultra -retime\nreport_qor"
        result = self.refine(rag, script)
        assert "compile_ultra -retime" in result.script
        assert "report_qor" in result.script

    def test_hallucinated_retime_repaired(self, rag):
        script = "create_clock -period 1.0 clk\nretime_design -effort high\ncompile"
        result = self.refine(rag, script)
        assert "retime_design" not in result.script
        assert "optimize_registers" in result.script
        assert result.trace.num_repaired >= 1

    def test_hallucinated_fanout_repaired(self, rag):
        script = "optimize_fanout -max 16\ncompile"
        result = self.refine(rag, script)
        assert "optimize_fanout" not in result.script
        assert "balance_buffer" in result.script

    def test_unknown_junk_dropped(self, rag):
        script = "insert_clock_tree -balanced\ncompile"
        result = self.refine(rag, script)
        assert "insert_clock_tree" not in result.script

    def test_invalid_option_sanitized(self, rag):
        script = "compile_ultra -auto_retime\nreport_qor"
        result = self.refine(rag, script)
        assert "-auto_retime" not in result.script
        assert "compile_ultra" in result.script

    def test_compile_restored_if_missing(self, rag):
        script = "create_clock -period 1.0 clk\nreport_qor"
        result = self.refine(rag, script)
        assert any(
            line.split()[0].startswith("compile")
            for line in result.script.splitlines()
        )

    def test_constraints_protected(self, rag):
        script = "create_clock -period 7.7 clk\nset_wire_load_model -name 5K_heavy_1k\ncompile"
        result = self.refine(rag, script)
        assert "create_clock -period 7.7 clk" in result.script
        assert "set_wire_load_model -name 5K_heavy_1k" in result.script

    def test_trace_records_queries(self, rag):
        result = self.refine(rag, "compile_ultra\nreport_qor")
        revised = [s for s in result.trace.steps if s.query]
        assert revised
        assert all(s.retrieved for s in revised)


class TestBetterTiming:
    def snap(self, wns, tns, cps, area):
        return QoRSnapshot(
            design="x", wns=wns, cps=cps, tns=tns, area=area,
            num_violations=0, num_cells=0, num_registers=0,
            max_fanout=0, leakage_nw=0.0, dynamic_uw=0.0,
        )

    def test_wns_dominates(self):
        assert _better_timing(self.snap(-0.1, -1, -0.1, 10), self.snap(-0.2, -0.5, -0.2, 5))

    def test_tns_second(self):
        assert _better_timing(self.snap(-0.1, -1, -0.1, 10), self.snap(-0.1, -2, -0.1, 5))

    def test_area_wins_when_met(self):
        assert _better_timing(self.snap(0, 0, 0.2, 5), self.snap(0, 0, 2.0, 10))

    def test_cps_breaks_equal_area(self):
        assert _better_timing(self.snap(0, 0, 2.0, 10), self.snap(0, 0, 0.2, 10))


class TestChatLSFacade:
    DESIGN = """
    module tiny(input clk, input [7:0] a, b, output reg [7:0] y);
      reg [7:0] s;
      always @(posedge clk) begin
        s <= a + b;
        y <= s ^ {s[3:0], s[7:4]};
      end
    endmodule
    """
    SCRIPT = (
        "read_verilog tiny\ncurrent_design tiny\nlink\n"
        "set_wire_load_model -name 5K_heavy_1k\n"
        "create_clock -period 1.2 clk\ncompile\nreport_qor"
    )

    def test_customize_returns_script_and_trace(self, tiny_database):
        chatls = ChatLS(tiny_database)
        result = chatls.customize(
            self.DESIGN, "tiny", self.SCRIPT, "optimize timing", clock_period=1.2
        )
        assert "read_verilog tiny" in result.script
        assert result.analysis.design_name == "tiny"

    def test_customize_and_evaluate_runs_tool(self, tiny_database):
        chatls = ChatLS(tiny_database)
        result = chatls.customize_and_evaluate(
            self.DESIGN, "tiny", self.SCRIPT, "optimize timing", clock_period=1.2
        )
        assert result.executable
        assert result.qor is not None
        assert result.qor.area > 0

    def test_pass_at_k_returns_best(self, tiny_database):
        chatls = ChatLS(tiny_database)
        best = chatls.customize_pass_at_k(
            self.DESIGN, "tiny", self.SCRIPT, "optimize timing",
            k=3, clock_period=1.2,
        )
        single = chatls.customize_and_evaluate(
            self.DESIGN, "tiny", self.SCRIPT, "optimize timing",
            clock_period=1.2, seed=0,
        )
        if best.qor and single.qor:
            assert best.qor.wns >= single.qor.wns - 1e-9

    def test_requirement_object_accepted(self, tiny_database):
        chatls = ChatLS(tiny_database)
        req = Requirement(text="area please", objective="area")
        result = chatls.customize(
            self.DESIGN, "tiny", self.SCRIPT, req, clock_period=1.2
        )
        assert result.script
