"""Tests for iterative customization and the incremental compile path."""

import pytest

from repro.core import ChatLS
from repro.core.chatls import _extend_script
from repro.designs.chipyard import generate_family_variant
from repro.designs.database import ExpertDatabase
from repro.mentor import CircuitEncoder
from repro.synth import DCShell


@pytest.fixture(scope="module")
def tiny_db():
    db = ExpertDatabase(CircuitEncoder(seed=0))
    db.add_design(
        generate_family_variant("rocket", 0),
        strategies=["baseline_compile", "ultra_retime"],
    )
    return db


class TestExtendScript:
    def test_appends_refinement_before_reports(self):
        script = "read_verilog x\ncompile\nreport_qor"
        extended = _extend_script(script)
        lines = extended.splitlines()
        assert lines[-1] == "report_qor"
        assert "compile -incremental" in lines
        assert lines.index("compile -incremental") < lines.index("report_qor")

    def test_idempotent_structure(self):
        script = "read_verilog x\ncompile\nreport_qor"
        twice = _extend_script(_extend_script(script))
        assert twice.count("compile -incremental") == 2
        assert twice.splitlines()[-1] == "report_qor"


class TestIncrementalCompile:
    DESIGN = """
    module pipe(input clk, input [9:0] a, b, output reg [9:0] q);
      reg [9:0] s;
      reg [19:0] m;
      always @(posedge clk) begin
        s <= a + b;
        m <= s * b;
        q <= m[9:0] ^ m[19:10];
      end
    endmodule
    """

    def test_incremental_requires_prior_compile_state(self):
        shell = DCShell()
        shell.add_design("pipe", self.DESIGN)
        # -incremental before any compile falls back to a full compile.
        result = shell.run_script(
            "read_verilog pipe\ncreate_clock -period 2.0 clk\ncompile -incremental"
        )
        assert result.success
        assert result.qor is not None

    def test_incremental_never_regresses(self):
        base_script = (
            "read_verilog pipe\nset_wire_load_model -name 5K_heavy_1k\n"
            "create_clock -period 2.0 clk\ncompile_ultra -retime"
        )
        shell = DCShell()
        shell.add_design("pipe", self.DESIGN)
        first = shell.run_script(base_script)
        shell2 = DCShell()
        shell2.add_design("pipe", self.DESIGN)
        second = shell2.run_script(base_script + "\ncompile -incremental")
        assert second.qor.wns >= first.qor.wns - 1e-9

    def test_pass_log_records_incremental(self):
        shell = DCShell()
        shell.add_design("pipe", self.DESIGN)
        shell.run_script(
            "read_verilog pipe\ncreate_clock -period 2.0 clk\n"
            "compile\ncompile -incremental"
        )
        assert "compile -incremental" in shell.pass_log


class TestIterativeFacade:
    DESIGN = """
    module it(input clk, input [7:0] a, b, output reg [7:0] y);
      reg [7:0] s;
      always @(posedge clk) begin
        s <= a + b;
        y <= s ^ {s[3:0], s[7:4]};
      end
    endmodule
    """
    SCRIPT = (
        "read_verilog it\nset_wire_load_model -name 5K_heavy_1k\n"
        "create_clock -period 0.9 clk\ncompile\nreport_qor"
    )

    def test_history_non_regressing(self, tiny_db):
        chatls = ChatLS(tiny_db)
        history = chatls.customize_iteratively(
            self.DESIGN, "it", self.SCRIPT, "optimize timing",
            rounds=3, k=2, clock_period=0.9,
        )
        assert history
        wns = [h.qor.wns for h in history if h.qor]
        for earlier, later in zip(wns, wns[1:]):
            assert later >= earlier - 1e-9

    def test_stops_when_met(self, tiny_db):
        chatls = ChatLS(tiny_db)
        history = chatls.customize_iteratively(
            self.DESIGN, "it", self.SCRIPT.replace("0.9", "9.0"),
            "optimize timing", rounds=4, k=1, clock_period=9.0,
        )
        assert len(history) == 1  # already met after round one
        assert history[0].qor.wns >= 0
