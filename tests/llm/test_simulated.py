"""Tests for the simulated LLM layer: prompts, policies, hallucinations."""

import pytest

from repro.llm import (
    HALLUCINATION_GALLERY,
    VALID_COMMANDS,
    ModelProfile,
    SimulatedLLM,
    build_prompt,
    chatls_core,
    claude35,
    extract_script,
    gpt4o,
    parse_sections,
)


class TestPromptSchema:
    def test_round_trip(self):
        sections = {
            "USER REQUIREMENT": "fix timing",
            "BASELINE SCRIPT": "compile",
            "DESIGN RTL": "module m(); endmodule",
        }
        prompt = build_prompt(sections)
        parsed = parse_sections(prompt)
        for key, value in sections.items():
            assert parsed[key] == value

    def test_section_order_known_first(self):
        prompt = build_prompt({"DESIGN RTL": "x", "USER REQUIREMENT": "y"})
        assert prompt.index("USER REQUIREMENT") < prompt.index("DESIGN RTL")

    def test_extract_script_fenced(self):
        text = "Here you go:\n```tcl\ncompile\nreport_qor\n```\nDone."
        assert extract_script(text) == "compile\nreport_qor"

    def test_extract_script_bare_fence(self):
        text = "```\ncompile\n```"
        assert extract_script(text) == "compile"

    def test_extract_script_fallback_lines(self):
        text = "compile_ultra -retime\nreport_qor"
        assert "compile_ultra -retime" in extract_script(text)

    def test_extract_script_none(self):
        assert extract_script("I cannot help with that.") is None


class TestDeterminism:
    def test_same_seed_same_output(self):
        llm = gpt4o()
        prompt = build_prompt(
            {"USER REQUIREMENT": "fix timing", "BASELINE SCRIPT": "compile",
             "TOOL REPORT": "Worst Negative Slack: -0.5"}
        )
        a = llm.complete(prompt, seed=3)
        b = llm.complete(prompt, seed=3)
        assert a.text == b.text

    def test_different_seeds_can_differ(self):
        llm = claude35()
        prompt = build_prompt(
            {"USER REQUIREMENT": "fix timing",
             "BASELINE SCRIPT": "create_clock -period 1.0 clk\ncompile",
             "TOOL REPORT": "Worst Negative Slack: -0.9",
             "DESIGN RTL": "module a(); endmodule\nmodule b(); endmodule"}
        )
        outputs = {llm.complete(prompt, seed=s).text for s in range(8)}
        assert len(outputs) > 1

    def test_model_name_recorded(self):
        completion = gpt4o().complete("## USER REQUIREMENT\nx")
        assert completion.model == "gpt-4o-sim"


class TestScriptDrafting:
    def draft(self, llm, sections, seed=0):
        completion = llm.complete(build_prompt(sections), seed=seed)
        return extract_script(completion.text)

    def test_violated_design_gets_stronger_compile(self):
        llm = SimulatedLLM(ModelProfile(name="clean", hallucination_rate=0.0))
        script = self.draft(
            llm,
            {
                "USER REQUIREMENT": "fix timing",
                "BASELINE SCRIPT": "create_clock -period 1.0 clk\ncompile\nreport_qor",
                "TOOL REPORT": "Worst Negative Slack: -0.80",
            },
        )
        assert "compile" in script
        assert "create_clock -period 1.0 clk" in script  # constraints kept

    def test_met_design_keeps_plain_compile(self):
        llm = SimulatedLLM(ModelProfile(name="clean", hallucination_rate=0.0))
        script = self.draft(
            llm,
            {
                "USER REQUIREMENT": "fix timing",
                "BASELINE SCRIPT": "create_clock -period 9 clk\ncompile",
                "TOOL REPORT": "Worst Negative Slack: 0.00",
            },
        )
        assert "compile_ultra" not in script

    def test_grounded_prompt_follows_strategies(self):
        llm = chatls_core()
        script = self.draft(
            llm,
            {
                "USER REQUIREMENT": "fix timing",
                "BASELINE SCRIPT": "create_clock -period 1 clk\ncompile",
                "TOOL REPORT": "Worst Negative Slack: -0.5",
                "RETRIEVED STRATEGIES": (
                    "[ultra_retime] retiming helps\n"
                    "- command: compile_ultra -retime\n"
                    "- command: optimize_registers\n"
                ),
            },
            seed=1,
        )
        assert "compile_ultra -retime" in script
        assert "optimize_registers" in script

    def test_single_compile_class_command(self):
        llm = chatls_core()
        script = self.draft(
            llm,
            {
                "USER REQUIREMENT": "fix timing",
                "BASELINE SCRIPT": "create_clock -period 1 clk\ncompile",
                "RETRIEVED STRATEGIES": (
                    "- command: compile -map_effort high\n"
                    "- command: compile_ultra\n"
                    "- command: set_max_fanout 16\n"
                ),
            },
        )
        compile_lines = [
            l for l in script.splitlines() if l.split()[0].startswith("compile")
        ]
        assert len(compile_lines) == 1
        assert compile_lines[0] == "compile -map_effort high"

    def test_hallucination_rate_zero_always_valid(self):
        llm = SimulatedLLM(ModelProfile(name="clean", hallucination_rate=0.0))
        for seed in range(10):
            script = self.draft(
                llm,
                {
                    "USER REQUIREMENT": "fix timing",
                    "BASELINE SCRIPT": "create_clock -period 1 clk\ncompile",
                    "TOOL REPORT": "Worst Negative Slack: -0.5",
                },
                seed=seed,
            )
            for line in script.splitlines():
                assert line.split()[0] in VALID_COMMANDS or line.split()[0] in (
                    "create_clock",
                ), line

    def test_hallucination_rate_one_always_invalid(self):
        llm = SimulatedLLM(ModelProfile(name="wild", hallucination_rate=1.0))
        script = self.draft(
            llm,
            {
                "USER REQUIREMENT": "fix timing",
                "BASELINE SCRIPT": "create_clock -period 1 clk\ncompile",
                "TOOL REPORT": "Worst Negative Slack: -0.5",
            },
        )
        assert any(
            line in HALLUCINATION_GALLERY for line in script.splitlines()
        )

    def test_context_window_truncates_rtl_cues(self):
        """A multiplier past the window must be invisible to the model."""
        filler = "// padding comment line\n" * 400
        rtl = filler + "module m(input [7:0] a, b, output [15:0] y); assign y = a * b * a * b; endmodule"
        tiny = SimulatedLLM(ModelProfile(name="tiny", context_window=100, hallucination_rate=0.0))
        big = SimulatedLLM(ModelProfile(name="big", context_window=100000, hallucination_rate=0.0))
        sections = {
            "USER REQUIREMENT": "fix timing",
            "BASELINE SCRIPT": "create_clock -period 1 clk\ncompile",
            "TOOL REPORT": "Worst Negative Slack: -0.5",
            "DESIGN RTL": rtl,
        }
        tiny_cues = tiny._gather_cues(parse_sections(build_prompt(sections)))
        big_cues = big._gather_cues(parse_sections(build_prompt(sections)))
        assert not tiny_cues.mul_heavy
        assert big_cues.mul_heavy


class TestAuxiliaryTasks:
    def test_cypher_generation_module(self):
        llm = chatls_core()
        completion = llm.complete(
            build_prompt({"TASK": "GENERATE CYPHER", "TARGET": "alu", "KIND": "module"})
        )
        assert "MATCH (m:Module {name: 'alu'})" in completion.text

    def test_cypher_generation_cell(self):
        llm = chatls_core()
        completion = llm.complete(
            build_prompt({"TASK": "GENERATE CYPHER", "TARGET": "INV_X1", "KIND": "cell"})
        )
        assert "LibCell" in completion.text

    def test_query_formulation(self):
        llm = chatls_core()
        completion = llm.complete(
            build_prompt(
                {"TASK": "FORMULATE QUERY", "THOUGHT STEP": "apply optimize_registers to balance stages"}
            )
        )
        assert "optimize_registers" in completion.text

    def test_rerank_orders_by_overlap(self):
        llm = chatls_core()
        completion = llm.complete(
            build_prompt(
                {
                    "TASK": "RERANK",
                    "QUERY": "retime registers pipeline",
                    "CANDIDATES": (
                        "doc_a: buffer trees for fanout\n"
                        "doc_b: retime registers to balance pipeline stages\n"
                    ),
                }
            )
        )
        lines = completion.text.splitlines()
        assert lines[0] == "doc_b"


class TestProfiles:
    def test_builders_produce_distinct_profiles(self):
        assert gpt4o().profile.name != claude35().profile.name
        assert chatls_core().profile.hallucination_rate < claude35().profile.hallucination_rate

    def test_chatls_core_knows_more_heuristics(self):
        assert chatls_core().profile.knows_retiming_heuristic
        assert not gpt4o().profile.knows_retiming_heuristic
