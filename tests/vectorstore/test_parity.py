"""Cross-index parity: randomized recall, exactness, errors, persistence.

Satellite suite for the ANN work: FlatIndex is ground truth, and every
other index must either match it exactly (exhaustive settings) or clear
a recall floor (ANN settings), raise the same errors for the same bad
inputs, and survive mmap persistence — including into a fresh process.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vectorstore import FlatIndex, HNSWIndex, IVFIndex

ALL_INDEX_TYPES = [FlatIndex, IVFIndex, HNSWIndex]


def _corpus(seed: int, n: int, dim: int, clusters: int = 6) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(clusters, dim))
    per = int(np.ceil(n / clusters))
    rows = np.vstack(
        [c + rng.normal(scale=0.5, size=(per, dim)) for c in centers]
    )
    return rows[:n]


class TestRandomizedRecall:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        metric=st.sampled_from(["cosine", "l2"]),
    )
    def test_hnsw_recall_at_default_ef(self, seed, metric):
        """recall@10 >= 0.95 vs flat ground truth at default ef_search."""
        data = _corpus(seed, n=400, dim=16)
        flat = FlatIndex(dim=16, metric=metric)
        hnsw = HNSWIndex(dim=16, metric=metric, seed=seed % 17)
        flat.add_batch(range(len(data)), data)
        hnsw.add_batch(range(len(data)), data)
        rng = np.random.default_rng(seed + 1)
        queries = data[rng.integers(0, len(data), size=20)] + rng.normal(
            scale=0.05, size=(20, 16)
        )
        hits = total = 0
        for query in queries:
            truth = {r.key for r in flat.search(query, k=10)}
            approx = {r.key for r in hnsw.search(query, k=10)}
            hits += len(truth & approx)
            total += len(truth)
        assert hits / total >= 0.95

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        metric=st.sampled_from(["cosine", "ip", "l2"]),
        k=st.integers(min_value=1, max_value=12),
    )
    def test_hnsw_exact_at_exhaustive_ef(self, seed, metric, k):
        """ef_search >= n is brute force: keys AND scores match flat."""
        data = _corpus(seed, n=120, dim=8)
        flat = FlatIndex(dim=8, metric=metric)
        hnsw = HNSWIndex(
            dim=8, metric=metric, ef_search=len(data), dtype=np.float64
        )
        flat.add_batch(range(len(data)), data)
        hnsw.add_batch(range(len(data)), data)
        query = _corpus(seed + 5, n=1, dim=8)[0]
        want = [(r.key, r.score) for r in flat.search(query, k=k)]
        got = [(r.key, r.score) for r in hnsw.search(query, k=k)]
        assert got == want
        got_batch = [
            (r.key, r.score) for r in hnsw.search_batch(query.reshape(1, -1), k=k)[0]
        ]
        batch_want = [
            (r.key, r.score) for r in flat.search_batch(query.reshape(1, -1), k=k)[0]
        ]
        assert got_batch == batch_want


class TestErrorParity:
    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_duplicate_key(self, index_type):
        idx = index_type(dim=3)
        idx.add("k", [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="duplicate"):
            idx.add("k", [4.0, 5.0, 6.0])
        assert len(idx) == 1

    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_add_dim_mismatch(self, index_type):
        idx = index_type(dim=3)
        with pytest.raises(ValueError, match="dim"):
            idx.add("k", [1.0, 2.0])
        assert len(idx) == 0

    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_search_dim_mismatch(self, index_type):
        idx = index_type(dim=3)
        idx.add("k", [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="dim"):
            idx.search([1.0, 2.0])

    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_unknown_metric(self, index_type):
        with pytest.raises(ValueError, match="metric"):
            index_type(dim=3, metric="manhattan")

    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_empty_search_returns_empty(self, index_type):
        assert index_type(dim=3).search([1.0, 2.0, 3.0]) == []

    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_contains_protocol(self, index_type):
        idx = index_type(dim=2)
        idx.add("present", [1.0, 0.0])
        assert "present" in idx
        assert "absent" not in idx


class TestBatchParity:
    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_add_batch_then_search(self, index_type):
        data = _corpus(3, n=60, dim=6)
        idx = index_type(dim=6)
        idx.add_batch([f"v{i}" for i in range(len(data))], data)
        assert len(idx) == len(data)
        hits = idx.search(data[7], k=3)
        assert hits and hits[0].key == "v7"

    @pytest.mark.parametrize("index_type", ALL_INDEX_TYPES)
    def test_search_batch_shape(self, index_type):
        data = _corpus(4, n=40, dim=5)
        idx = index_type(dim=5)
        idx.add_batch(range(len(data)), data)
        out = idx.search_batch(data[:6], k=4)
        assert len(out) == 6
        assert all(len(row) == 4 for row in out)
        assert out[2][0].key == 2


class TestIVFIncremental:
    def test_add_after_train_keeps_centroids(self):
        data = _corpus(5, n=200, dim=8)
        idx = IVFIndex(dim=8, nlist=8, seed=0)
        idx.add_batch(range(150), data[:150])
        idx.search(data[0], k=1)  # triggers training
        assert idx._centroids is not None
        trained = idx._centroids
        for i in range(150, 170):
            idx.add(i, data[i])
        # Incremental assignment, no retrain for a small trickle.
        assert idx._centroids is trained
        hits = idx.search(data[160], k=3)
        assert 160 in {h.key for h in hits}

    def test_drift_threshold_forces_retrain(self):
        data = _corpus(6, n=300, dim=8)
        idx = IVFIndex(dim=8, nlist=4, seed=0, drift_threshold=0.25)
        idx.add_batch(range(100), data[:100])
        idx.search(data[0], k=1)
        assert idx._centroids is not None
        for i in range(100, 180):  # 80 drifted > 0.25 * 100
            idx.add(i, data[i])
        assert idx._centroids is None  # marked for lazy retrain
        hits = idx.search(data[150], k=3)  # retrains here
        assert idx._centroids is not None
        assert 150 in {h.key for h in hits}


class TestPersistenceParity:
    def test_flat_save_load(self, tmp_path):
        data = _corpus(7, n=50, dim=6)
        idx = FlatIndex(dim=6)
        idx.add_batch(range(len(data)), data, payloads=[{"i": i} for i in range(len(data))])
        idx.save(tmp_path / "flat")
        loaded = FlatIndex.load(tmp_path / "flat", mmap=True)
        query = data[11] + 0.01
        assert [(r.key, r.score, r.payload) for r in loaded.search(query, k=5)] == [
            (r.key, r.score, r.payload) for r in idx.search(query, k=5)
        ]

    def test_mmap_round_trip_across_process(self, tmp_path):
        """A saved index must reopen (mmapped) in a fresh interpreter."""
        data = _corpus(8, n=150, dim=10)
        idx = HNSWIndex(dim=10, metric="cosine", M=8, seed=1)
        idx.add_batch(range(len(data)), data)
        idx.save(tmp_path / "xproc")
        query = data[33] + 0.01
        want = [r.key for r in idx.search(query, k=5)]

        import pathlib

        import repro

        src_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        code = (
            "import sys, numpy as np\n"
            f"sys.path.insert(0, {src_root!r})\n"
            "from repro.vectorstore import HNSWIndex\n"
            f"idx = HNSWIndex.load({str(tmp_path / 'xproc')!r}, mmap=True)\n"
            "assert idx._store.mmapped\n"
            f"query = np.asarray({query.tolist()!r})\n"
            "print(','.join(str(r.key) for r in idx.search(query, k=5)))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        got = [int(s) for s in proc.stdout.strip().split(",")]
        assert got == want
