"""Tests for the vector indexes: exactness, metrics, IVF recall."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.vectorstore import FlatIndex, IVFIndex, pairwise_scores


class TestMetrics:
    def test_cosine_self_similarity(self):
        v = np.array([[1.0, 2.0, 3.0]])
        assert pairwise_scores(v, v, "cosine")[0, 0] == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert pairwise_scores(a, b, "cosine")[0, 0] == pytest.approx(0.0)

    def test_l2_zero_distance(self):
        v = np.array([[1.0, 2.0]])
        assert pairwise_scores(v, v, "l2")[0, 0] == pytest.approx(0.0)

    def test_l2_matches_numpy(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(3, 5))
        d = rng.normal(size=(4, 5))
        scores = pairwise_scores(q, d, "l2")
        for i in range(3):
            for j in range(4):
                assert -scores[i, j] == pytest.approx(np.linalg.norm(q[i] - d[j]))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            pairwise_scores(np.ones((1, 2)), np.ones((1, 2)), "hamming")

    def test_inner_product(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert pairwise_scores(a, b, "ip")[0, 0] == pytest.approx(11.0)


class TestFlatIndex:
    def test_basic_search(self):
        idx = FlatIndex(dim=2)
        idx.add("x", [1, 0], payload="east")
        idx.add("y", [0, 1], payload="north")
        results = idx.search([0.9, 0.1], k=1)
        assert results[0].key == "x"
        assert results[0].payload == "east"

    def test_k_larger_than_index(self):
        idx = FlatIndex(dim=2)
        idx.add("a", [1, 0])
        assert len(idx.search([1, 0], k=10)) == 1

    def test_empty_index_search(self):
        assert FlatIndex(dim=3).search([1, 2, 3]) == []

    def test_duplicate_key_rejected(self):
        idx = FlatIndex(dim=2)
        idx.add("a", [1, 0])
        with pytest.raises(ValueError):
            idx.add("a", [0, 1])

    def test_dim_mismatch_rejected(self):
        idx = FlatIndex(dim=3)
        with pytest.raises(ValueError):
            idx.add("a", [1, 2])
        idx.add("b", [1, 2, 3])
        with pytest.raises(ValueError):
            idx.search([1, 2])

    def test_remove(self):
        idx = FlatIndex(dim=2)
        idx.add("a", [1, 0])
        idx.add("b", [0, 1])
        idx.remove("a")
        assert "a" not in idx
        assert idx.search([1, 0], k=1)[0].key == "b"

    def test_get_vector_round_trip(self):
        idx = FlatIndex(dim=3)
        idx.add("a", [1.5, 2.5, 3.5])
        np.testing.assert_allclose(idx.get_vector("a"), [1.5, 2.5, 3.5])

    def test_results_sorted_by_score(self):
        idx = FlatIndex(dim=2, metric="l2")
        for i in range(10):
            idx.add(i, [float(i), 0.0])
        results = idx.search([3.2, 0.0], k=4)
        assert [r.key for r in results] == [3, 4, 2, 5]
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    @given(
        arrays(np.float64, (12, 4), elements=st.floats(-5, 5)),
        arrays(np.float64, (4,), elements=st.floats(-5, 5)),
    )
    @settings(max_examples=20, deadline=None)
    def test_search_matches_brute_force(self, data, query):
        idx = FlatIndex(dim=4, metric="l2")
        for i, row in enumerate(data):
            idx.add(i, row)
        results = idx.search(query, k=3)
        brute = sorted(range(12), key=lambda i: np.linalg.norm(data[i] - query))
        # Scores must agree even if equal-distance keys tie.  The kernel
        # computes sqrt(|q|^2 + |d|^2 - 2 q.d), which loses ~1e-7 to
        # cancellation when the distance is tiny relative to the norms —
        # hence the loose absolute tolerance.
        expect = np.linalg.norm(data[brute[0]] - query)
        assert -results[0].score == pytest.approx(expect, abs=1e-6)


class TestIVFIndex:
    @pytest.fixture
    def clustered_data(self):
        rng = np.random.default_rng(7)
        centers = rng.normal(scale=10, size=(6, 8))
        points = np.vstack(
            [center + rng.normal(scale=0.3, size=(20, 8)) for center in centers]
        )
        return points

    def test_exhaustive_probe_matches_flat(self, clustered_data):
        flat = FlatIndex(dim=8, metric="l2")
        ivf = IVFIndex(dim=8, nlist=6, nprobe=6, metric="l2", seed=3)
        for i, row in enumerate(clustered_data):
            flat.add(i, row)
            ivf.add(i, row)
        query = clustered_data[5] + 0.05
        assert [r.key for r in ivf.search(query, k=5)] == [
            r.key for r in flat.search(query, k=5)
        ]

    def test_high_recall_with_few_probes(self, clustered_data):
        flat = FlatIndex(dim=8, metric="l2")
        ivf = IVFIndex(dim=8, nlist=6, nprobe=2, metric="l2", seed=3)
        for i, row in enumerate(clustered_data):
            flat.add(i, row)
            ivf.add(i, row)
        hits = 0
        for q in range(0, 120, 10):
            query = clustered_data[q] + 0.01
            truth = {r.key for r in flat.search(query, k=5)}
            approx = {r.key for r in ivf.search(query, k=5)}
            hits += len(truth & approx)
        assert hits / (12 * 5) > 0.9

    def test_lazy_training(self, clustered_data):
        ivf = IVFIndex(dim=8, nlist=4)
        for i, row in enumerate(clustered_data[:30]):
            ivf.add(i, row)
        assert not ivf.is_trained
        ivf.search(clustered_data[0], k=1)
        assert ivf.is_trained

    def test_train_empty_raises(self):
        with pytest.raises(ValueError):
            IVFIndex(dim=4).train()

    def test_add_after_search_retrains(self, clustered_data):
        ivf = IVFIndex(dim=8, nlist=4, nprobe=4, metric="l2")
        for i, row in enumerate(clustered_data[:40]):
            ivf.add(i, row)
        ivf.search(clustered_data[0], k=1)
        ivf.add(999, clustered_data[50])
        results = ivf.search(clustered_data[50], k=1)
        assert results[0].key == 999

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            IVFIndex(dim=0)
        with pytest.raises(ValueError):
            IVFIndex(dim=4, nlist=0)

    def test_cosine_metric(self, clustered_data):
        ivf = IVFIndex(dim=8, nlist=6, nprobe=6, metric="cosine", seed=1)
        for i, row in enumerate(clustered_data):
            ivf.add(i, row)
        result = ivf.search(clustered_data[0] * 3.0, k=1)  # scale-invariant
        assert result[0].score == pytest.approx(1.0, abs=1e-6)


class TestKMeansReseed:
    """Regression: empty k-means clusters must be reseeded, not left stale.

    With ``nlist`` larger than the number of natural clusters, Lloyd's
    iteration used to strand centroids no point maps to; those cells then
    wasted probes forever.  The farthest-point reseed guarantees every
    cell ends up serving at least one vector.
    """

    @staticmethod
    def _duplicate_heavy_data(dim=4):
        """10 identical vectors at the origin + 3 distinct far points.

        Initial centroid sampling almost always draws two or more of the
        duplicates; identical centroids tie on every point, the lowest
        index wins them all, and the rest start (and, pre-fix, stay)
        empty while the far points go unrepresented.
        """
        data = np.zeros((13, dim))
        data[10, 0], data[11, 0], data[12, 0] = 100.0, 200.0, 300.0
        return data

    def test_kmeans_leaves_no_empty_cluster(self):
        from repro.vectorstore.ivf import _kmeans
        from repro.vectorstore.metrics import pairwise_scores

        data = self._duplicate_heavy_data()
        for seed in range(10):
            centroids = _kmeans(data, 4, np.random.default_rng(seed))
            assert centroids.shape == (4, data.shape[1])
            assert np.isfinite(centroids).all()
            assign = np.argmin(-pairwise_scores(data, centroids, "l2"), axis=1)
            assert set(assign.tolist()) == set(range(4)), seed

    def test_oversized_nlist_keeps_every_cell_usable(self):
        data = self._duplicate_heavy_data()
        ivf = IVFIndex(dim=4, nlist=4, nprobe=4, metric="l2", seed=2)
        for i, row in enumerate(data):
            ivf.add(i, row)
        ivf.train()
        assert sum(1 for cell in ivf._cells if cell) == 4

    def test_reseeded_cells_serve_far_points(self):
        """The far points must be findable with nprobe=1: each now lives
        in its own reseeded cell instead of hiding behind a stale one."""
        data = self._duplicate_heavy_data()
        ivf = IVFIndex(dim=4, nlist=4, nprobe=1, metric="l2", seed=0)
        for i, row in enumerate(data):
            ivf.add(i, row)
        for q in (10, 11, 12):
            results = ivf.search(data[q], k=1)
            assert results and results[0].key == q


class TestFlatIndexGrowth:
    """Satellite: searches never rebuild; growth is O(log n) doublings."""

    def test_search_after_add_does_not_rebuild(self):
        idx = FlatIndex(dim=3)
        idx.add("a", [1.0, 0.0, 0.0])
        rebuilds = idx.rebuilds
        for _ in range(10):
            idx.search([1.0, 0.0, 0.0], k=1)
        assert idx.rebuilds == rebuilds

    def test_interleaved_add_search_rebuilds_logarithmically(self):
        rng = np.random.default_rng(0)
        idx = FlatIndex(dim=4)
        n = 200
        for i in range(n):
            idx.add(i, rng.normal(size=4))
            idx.search(rng.normal(size=4), k=3)
        # Capacity doubles from 4, so ceil(log2(200/4)) + 1 = 7 growths.
        assert idx.rebuilds <= int(np.ceil(np.log2(n))) + 1
        assert len(idx) == n

    def test_add_batch_grows_once(self):
        rng = np.random.default_rng(1)
        idx = FlatIndex(dim=4)
        idx.add_batch(list(range(100)), rng.normal(size=(100, 4)))
        assert idx.rebuilds == 1
        assert len(idx) == 100

    def test_results_unaffected_by_growth(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(50, 4))
        grown = FlatIndex(dim=4)
        for i, vec in enumerate(vectors):
            grown.add(i, vec)
            grown.search(vec, k=1)  # interleave searches with growth
        batch = FlatIndex(dim=4)
        batch.add_batch(list(range(50)), vectors)
        query = rng.normal(size=4)
        got = [(r.key, r.score) for r in grown.search(query, k=5)]
        want = [(r.key, r.score) for r in batch.search(query, k=5)]
        assert got == want

    def test_remove_swaps_last_without_rebuild(self):
        """Satellite (ISSUE 8): remove is swap-with-last — no O(n)
        compaction, no reallocation, and every surviving key still maps
        to its own vector."""
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(6, 3))
        idx = FlatIndex(dim=3)
        for i in range(6):
            idx.add(i, vectors[i])
        rebuilds = idx.rebuilds
        idx.remove(2)
        assert idx.rebuilds == rebuilds  # no matrix reallocation
        assert 2 not in idx
        for key in (0, 1, 3, 4, 5):
            assert key in idx
            np.testing.assert_array_equal(idx.get_vector(key), vectors[key])
        # The swapped-in row (old last) must be searchable at its new slot.
        assert idx.search(vectors[5], k=1)[0].key == 5

    def test_remove_last_key(self):
        idx = FlatIndex(dim=2)
        idx.add("a", [1.0, 0.0])
        idx.add("b", [0.0, 1.0])
        idx.remove("b")
        assert "b" not in idx and len(idx) == 1
        assert idx.search([1.0, 0.0], k=2)[0].key == "a"

    def test_add_batch_rejects_duplicates_and_shape(self):
        idx = FlatIndex(dim=2)
        idx.add("a", [1.0, 0.0])
        with pytest.raises(ValueError):
            idx.add_batch(["b", "a"], np.eye(2))
        with pytest.raises(ValueError):
            idx.add_batch(["b", "b"], np.eye(2))
        with pytest.raises(ValueError):
            idx.add_batch(["b"], np.ones((1, 3)))
        assert len(idx) == 1  # failed batches insert nothing

    def test_search_batch_matches_search(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=(40, 6))
        idx = FlatIndex(dim=6, metric="cosine")
        idx.add_batch(list(range(40)), data)
        queries = rng.normal(size=(5, 6))
        batched = idx.search_batch(queries, k=4)
        for query, hits in zip(queries, batched):
            loop = idx.search(query, k=4)
            assert [h.key for h in hits] == [h.key for h in loop]
            for a, b in zip(hits, loop):
                assert a.score == pytest.approx(b.score, rel=1e-12)
