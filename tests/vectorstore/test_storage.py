"""VectorArena: growth, swap-removal, mmap persistence, pickling."""

import os
import pickle

import numpy as np
import pytest

from repro.vectorstore import VectorArena


class TestArenaBasics:
    def test_append_and_view(self):
        arena = VectorArena(3)
        assert arena.append([1.0, 2.0, 3.0]) == 0
        assert arena.append([4.0, 5.0, 6.0]) == 1
        np.testing.assert_array_equal(arena.view(), [[1, 2, 3], [4, 5, 6]])
        assert len(arena) == 2

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            VectorArena(0)
        arena = VectorArena(3)
        with pytest.raises(ValueError):
            arena.append([1.0, 2.0])
        with pytest.raises(ValueError):
            arena.extend(np.ones((2, 4)))

    def test_extend_is_block_copy(self):
        arena = VectorArena(4)
        positions = arena.extend(np.arange(20.0).reshape(5, 4))
        assert list(positions) == [0, 1, 2, 3, 4]
        assert arena.rebuilds == 1  # a single growth for the whole block
        np.testing.assert_array_equal(arena.view()[2], [8, 9, 10, 11])

    def test_growth_is_logarithmic(self):
        arena = VectorArena(2)
        for i in range(200):
            arena.append([float(i), 0.0])
        assert arena.rebuilds <= int(np.ceil(np.log2(200))) + 1
        assert len(arena) == 200

    def test_swap_remove_moves_last(self):
        arena = VectorArena(2)
        arena.extend(np.array([[0.0, 0], [1, 1], [2, 2], [3, 3]]))
        moved_from = arena.swap_remove(1)
        assert moved_from == 3
        np.testing.assert_array_equal(arena.view(), [[0, 0], [3, 3], [2, 2]])
        assert arena.swap_remove(2) is None  # removing the last row
        assert len(arena) == 2

    def test_float32_capable(self):
        arena = VectorArena(2, dtype=np.float32)
        arena.append([1.5, 2.5])
        assert arena.view().dtype == np.float32


class TestArenaPersistence:
    def test_save_load_round_trip(self, tmp_path):
        arena = VectorArena(3, dtype=np.float32)
        arena.extend(np.arange(12.0).reshape(4, 3))
        prefix = tmp_path / "vecs"
        arena.save(prefix, sidecar={"keys": ["a", "b", "c", "d"]})
        assert (tmp_path / "vecs.npy").exists()
        assert (tmp_path / "vecs.json").exists()
        loaded, sidecar = VectorArena.load(prefix, mmap=False)
        np.testing.assert_array_equal(loaded.view(), arena.view())
        assert loaded.dtype == np.float32
        assert sidecar == {"keys": ["a", "b", "c", "d"]}

    def test_mmap_load_is_zero_copy_until_mutation(self, tmp_path):
        arena = VectorArena(2)
        arena.extend(np.array([[1.0, 2], [3, 4]]))
        arena.save(tmp_path / "m")
        loaded, _ = VectorArena.load(tmp_path / "m", mmap=True)
        assert loaded.mmapped
        assert isinstance(loaded.view(), np.memmap)
        np.testing.assert_array_equal(loaded.view(), arena.view())
        # First mutation materializes to heap memory (copy-on-write).
        loaded.append([5.0, 6.0])
        assert not loaded.mmapped
        assert not isinstance(loaded.view(), np.memmap)
        assert len(loaded) == 3
        # The file on disk is untouched.
        again, _ = VectorArena.load(tmp_path / "m")
        assert len(again) == 2

    def test_bad_format_rejected(self, tmp_path):
        arena = VectorArena(2)
        arena.append([1.0, 2.0])
        arena.save(tmp_path / "x")
        sidecar = (tmp_path / "x.json").read_text()
        (tmp_path / "x.json").write_text(sidecar.replace("repro-arena-v1", "bogus"))
        with pytest.raises(ValueError):
            VectorArena.load(tmp_path / "x")

    def test_shape_mismatch_rejected(self, tmp_path):
        arena = VectorArena(2)
        arena.extend(np.ones((3, 2)))
        arena.save(tmp_path / "y")
        np.save(tmp_path / "y.npy", np.ones((2, 2)))  # truncate vectors
        with pytest.raises(ValueError):
            VectorArena.load(tmp_path / "y")

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        arena = VectorArena(2)
        arena.append([1.0, 2.0])
        arena.save(tmp_path / "z")
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []


class TestArenaPickle:
    def test_round_trip(self):
        arena = VectorArena(3, dtype=np.float32)
        arena.extend(np.arange(6.0).reshape(2, 3))
        clone = pickle.loads(pickle.dumps(arena, protocol=5))
        np.testing.assert_array_equal(clone.view(), arena.view())
        assert clone.dtype == np.float32
        clone.append([9.0, 9.0, 9.0])  # clone stays independently growable
        assert len(clone) == 3 and len(arena) == 2

    def test_mmapped_arena_pickles_contents(self, tmp_path):
        arena = VectorArena(2)
        arena.extend(np.array([[1.0, 2], [3, 4]]))
        arena.save(tmp_path / "p")
        loaded, _ = VectorArena.load(tmp_path / "p", mmap=True)
        clone = pickle.loads(pickle.dumps(loaded, protocol=5))
        assert not clone.mmapped
        np.testing.assert_array_equal(clone.view(), arena.view())
