"""HNSW index: contract, determinism, persistence, gating, counters."""

import numpy as np
import pytest

from repro.vectorstore import (
    FlatIndex,
    HNSWIndex,
    ann_enabled,
    live_index_stats,
    make_index,
)


@pytest.fixture
def clustered():
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=8.0, size=(8, 12))
    return np.vstack([c + rng.normal(scale=0.4, size=(50, 12)) for c in centers])


class TestContract:
    def test_basic_search_with_payloads(self):
        idx = HNSWIndex(dim=2)
        idx.add("x", [1, 0], payload="east")
        idx.add("y", [0, 1], payload="north")
        results = idx.search([0.9, 0.1], k=1)
        assert results[0].key == "x"
        assert results[0].payload == "east"

    def test_empty_and_oversized_k(self):
        idx = HNSWIndex(dim=3)
        assert idx.search([1, 2, 3]) == []
        idx.add("a", [1, 2, 3])
        assert len(idx.search([1, 2, 3], k=10)) == 1

    def test_duplicate_key_rejected(self):
        idx = HNSWIndex(dim=2)
        idx.add("a", [1, 0])
        with pytest.raises(ValueError):
            idx.add("a", [0, 1])

    def test_dim_mismatch_rejected(self):
        idx = HNSWIndex(dim=3)
        with pytest.raises(ValueError):
            idx.add("a", [1, 2])
        idx.add("b", [1, 2, 3])
        with pytest.raises(ValueError):
            idx.search([1, 2])
        with pytest.raises(ValueError):
            idx.search_batch(np.ones((2, 2)))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HNSWIndex(dim=0)
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, M=1)
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, ef_search=0)
        with pytest.raises(ValueError):
            HNSWIndex(dim=4, metric="hamming")

    def test_contains_and_get_vector(self):
        idx = HNSWIndex(dim=3, dtype=np.float64)
        idx.add("a", [1.5, 2.5, 3.5])
        assert "a" in idx and "b" not in idx
        np.testing.assert_allclose(idx.get_vector("a"), [1.5, 2.5, 3.5])

    def test_scores_sorted_descending(self, clustered):
        idx = HNSWIndex(dim=12, metric="l2", ef_search=32, seed=0)
        idx.add_batch(range(len(clustered)), clustered)
        scores = [r.score for r in idx.search(clustered[3], k=8)]
        assert scores == sorted(scores, reverse=True)


class TestRecallAndExactness:
    def test_high_recall_vs_flat(self, clustered):
        flat = FlatIndex(dim=12, metric="cosine")
        hnsw = HNSWIndex(dim=12, metric="cosine", M=8, ef_construction=64,
                         ef_search=48, seed=3)
        flat.add_batch(range(len(clustered)), clustered)
        hnsw.add_batch(range(len(clustered)), clustered)
        hits = total = 0
        for q in range(0, len(clustered), 10):
            query = clustered[q] + 0.01
            truth = {r.key for r in flat.search(query, k=10)}
            approx = {r.key for r in hnsw.search(query, k=10)}
            hits += len(truth & approx)
            total += len(truth)
        assert hits / total >= 0.95

    def test_exhaustive_ef_matches_flat_exactly(self, clustered):
        """ef_search >= n short-circuits to the same brute-force kernel
        as FlatIndex: identical keys, identical float64 scores."""
        flat = FlatIndex(dim=12, metric="cosine")
        hnsw = HNSWIndex(dim=12, metric="cosine", ef_search=10_000,
                         dtype=np.float64)
        flat.add_batch(range(len(clustered)), clustered)
        hnsw.add_batch(range(len(clustered)), clustered)
        for q in (0, 17, 399):
            query = clustered[q] + 0.02
            exact = [(r.key, r.score) for r in flat.search(query, k=7)]
            approx = [(r.key, r.score) for r in hnsw.search(query, k=7)]
            assert approx == exact

    def test_batch_matches_single(self, clustered):
        hnsw = HNSWIndex(dim=12, metric="l2", M=8, ef_construction=64,
                         ef_search=48, seed=5)
        hnsw.add_batch(range(len(clustered)), clustered)
        queries = clustered[[3, 77, 201, 350]] + 0.05
        batched = hnsw.search_batch(queries, k=5)
        for query, hits in zip(queries, batched):
            single = {r.key for r in hnsw.search(query, k=5)}
            assert len({r.key for r in hits} & single) >= 4

    def test_rerank_scores_are_exact_metric(self, clustered):
        """ANN shortlists; returned scores must still be the true metric."""
        hnsw = HNSWIndex(dim=12, metric="cosine", ef_search=16, seed=1)
        hnsw.add_batch(range(len(clustered)), clustered)
        flat = FlatIndex(dim=12, metric="cosine")
        flat.add_batch(range(len(clustered)), clustered)
        for hit in hnsw.search(clustered[42] + 0.01, k=5):
            exact = flat.search(flat.get_vector(hit.key), k=1)[0]
            # score of the hit against the query must equal the flat
            # score of the same stored vector against the same query
            expect = [r for r in flat.search(clustered[42] + 0.01, k=400)
                      if r.key == hit.key]
            assert hit.score == pytest.approx(expect[0].score, abs=1e-6)
            assert exact.key == hit.key


class TestDeterminism:
    def test_same_seed_same_graph(self, clustered):
        a = HNSWIndex(dim=12, M=6, ef_construction=32, seed=7)
        b = HNSWIndex(dim=12, M=6, ef_construction=32, seed=7)
        for i, row in enumerate(clustered[:150]):
            a.add(i, row)
            b.add(i, row)
        assert a._levels == b._levels
        assert a._level0 == b._level0
        assert a._entry == b._entry
        query = clustered[9] + 0.01
        assert [r.key for r in a.search(query, k=5)] == [
            r.key for r in b.search(query, k=5)
        ]

    def test_different_seed_different_levels(self, clustered):
        a = HNSWIndex(dim=12, M=4, seed=1)
        b = HNSWIndex(dim=12, M=4, seed=2)
        for i, row in enumerate(clustered[:200]):
            a.add(i, row)
            b.add(i, row)
        assert a._levels != b._levels


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, clustered):
        idx = HNSWIndex(dim=12, metric="cosine", M=8, ef_construction=48,
                        ef_search=32, seed=2)
        idx.add_batch(range(len(clustered)), clustered,
                      payloads=[{"i": i} for i in range(len(clustered))])
        idx.save(tmp_path / "ix")
        loaded = HNSWIndex.load(tmp_path / "ix", mmap=True)
        assert len(loaded) == len(idx)
        assert loaded._store.mmapped
        assert loaded._edges == idx._edges
        query = clustered[13] + 0.01
        got = [(r.key, r.payload, round(r.score, 9)) for r in loaded.search(query, k=5)]
        want = [(r.key, r.payload, round(r.score, 9)) for r in idx.search(query, k=5)]
        assert got == want

    def test_post_load_adds_stay_deterministic(self, tmp_path, clustered):
        """The construction RNG state rides the sidecar: adding after a
        reload builds the same graph as never having saved."""
        idx = HNSWIndex(dim=12, M=6, seed=4)
        for i, row in enumerate(clustered[:100]):
            idx.add(i, row)
        idx.save(tmp_path / "ix")
        loaded = HNSWIndex.load(tmp_path / "ix")
        for i, row in enumerate(clustered[100:140]):
            idx.add(100 + i, row)
            loaded.add(100 + i, row)
        assert idx._levels == loaded._levels
        query = clustered[120]
        assert [r.key for r in idx.search(query, k=5)] == [
            r.key for r in loaded.search(query, k=5)
        ]

    def test_l2_norms_rebuilt_on_load(self, tmp_path, clustered):
        idx = HNSWIndex(dim=12, metric="l2", ef_search=16, seed=0)
        idx.add_batch(range(300), clustered[:300])
        idx.save(tmp_path / "l2")
        loaded = HNSWIndex.load(tmp_path / "l2")
        query = clustered[7] + 0.01
        assert [r.key for r in loaded.search(query, k=3)] == [
            r.key for r in idx.search(query, k=3)
        ]


class TestGateAndStats:
    def test_make_index_default_is_flat(self, monkeypatch):
        monkeypatch.delenv("REPRO_ANN", raising=False)
        assert not ann_enabled()
        assert isinstance(make_index(8), FlatIndex)

    def test_make_index_gated_hnsw(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANN", "1")
        assert ann_enabled()
        idx = make_index(8, metric="l2", M=4)
        assert isinstance(idx, HNSWIndex)
        assert idx.M == 4 and idx.metric == "l2"

    def test_retrievers_honour_gate(self, monkeypatch):
        from repro.rag.retrievers import ManualRetriever

        monkeypatch.setenv("REPRO_ANN", "1")
        assert isinstance(ManualRetriever().index, HNSWIndex)
        monkeypatch.setenv("REPRO_ANN", "0")
        assert isinstance(ManualRetriever().index, FlatIndex)

    def test_gate_preserves_exact_retrieval(self, monkeypatch):
        """REPRO_ANN=0 must stay bit-identical; REPRO_ANN=1 on a corpus
        smaller than ef_search degenerates to exact brute force — same
        ranking, scores float32-close (HNSW stores float32 by default)."""
        from repro.rag.retrievers import ManualRetriever

        monkeypatch.setenv("REPRO_ANN", "0")
        exact = ManualRetriever().retrieve("report timing slack", k=3, rerank=False)
        monkeypatch.setenv("REPRO_ANN", "1")
        gated = ManualRetriever().retrieve("report timing slack", k=3, rerank=False)
        assert [h.command for h in exact] == [h.command for h in gated]
        for want, got in zip(exact, gated):
            assert got.score == pytest.approx(want.score, rel=1e-6)

    def test_live_stats_include_graph_counters(self, clustered):
        idx = HNSWIndex(dim=12, M=6, ef_search=16, seed=0)
        idx.add_batch(range(200), clustered[:200])
        idx.search(clustered[0], k=3)
        stats = live_index_stats()
        assert stats["vectors"] >= 200
        assert stats["graph_edges"] >= idx._edges
        assert stats["searches"] >= 1
        assert stats["dist_evals"] > 0
        counters = idx.search_counters()
        assert counters["hops"] > 0
        assert counters["exhaustive_searches"] == 0
