"""Integration tests: the full pipeline, cross-module invariants."""

import numpy as np
import pytest

from repro.core import BaselineRunner, ChatLS
from repro.designs import get_benchmark
from repro.designs.chipyard import generate_family_variant
from repro.designs.database import ExpertDatabase
from repro.eval.harness import TIMING_REQUIREMENT, baseline_script
from repro.hdl import elaborate
from repro.hdl.sim import Simulator
from repro.llm import gpt4o
from repro.mentor import CircuitEncoder
from repro.synth import DCShell


@pytest.fixture(scope="module")
def db():
    database = ExpertDatabase(CircuitEncoder(seed=0))
    for family in ("rocket", "nvdla", "sha3"):
        database.add_design(
            generate_family_variant(family, 0),
            strategies=["baseline_compile", "ultra_retime", "fanout_buffered"],
        )
    return database


class TestFullPipeline:
    def test_rtl_to_qor(self):
        """RTL -> elaborate -> synthesize -> report, no LLM involved."""
        bench = get_benchmark("riscv32i")
        shell = DCShell()
        shell.add_design(bench.name, bench.verilog, top=bench.top)
        result = shell.run_script(baseline_script(bench))
        assert result.success
        assert result.qor.num_cells > 500
        assert result.qor.num_registers > 100

    def test_chatls_never_worse_than_baseline_on_benchmarks(self, db):
        chatls = ChatLS(db)
        for name in ("aes", "tinyRocket"):
            bench = get_benchmark(name)
            script = baseline_script(bench)
            shell = DCShell()
            shell.add_design(bench.name, bench.verilog, top=bench.top)
            base = shell.run_script(script)
            report = next(o for l, o in base.transcript if l == "report_qor")
            result = chatls.customize_and_evaluate(
                bench.verilog, bench.name, script, TIMING_REQUIREMENT,
                tool_report=report, top=bench.top,
                clock_period=bench.clock_period, seed=0,
            )
            assert result.executable
            assert result.qor.wns >= base.qor.wns - 1e-6

    def test_baseline_model_runs_all_benchmarks(self):
        runner = BaselineRunner(gpt4o())
        bench = get_benchmark("dynamic_node")
        run = runner.run_pass_at_k(
            bench.verilog, bench.name, baseline_script(bench),
            TIMING_REQUIREMENT, k=3, top=bench.top,
        )
        assert run.qor is not None

    def test_customized_script_is_valid_tcl(self, db):
        """Every ChatLS script must parse and execute in a fresh shell."""
        chatls = ChatLS(db)
        bench = get_benchmark("jpeg")
        for seed in range(3):
            result = chatls.customize(
                bench.verilog, bench.name, baseline_script(bench),
                TIMING_REQUIREMENT, top=bench.top,
                clock_period=bench.clock_period, seed=seed,
            )
            shell = DCShell()
            shell.add_design(bench.name, bench.verilog, top=bench.top)
            run = shell.run_script(result.script)
            assert run.success, (seed, run.error, result.script)


class TestFunctionalPreservation:
    """Synthesized netlists must behave like the RTL, whatever the script."""

    DESIGN = """
    module dut(input clk, input [7:0] a, b, output reg [7:0] y);
      reg [7:0] t;
      always @(posedge clk) begin
        t <= a + b;
        y <= t ^ 8'h5A;
      end
    endmodule
    """

    def run_sequence(self, netlist, stimulus):
        sim = Simulator(netlist)
        outputs = []
        for a, b in stimulus:
            sim.set_word("a", a, 8)
            sim.set_word("b", b, 8)
            sim.step()
            outputs.append(sim.get_word("y", 8))
        return outputs

    @pytest.mark.parametrize(
        "commands",
        [
            "compile",
            "compile -map_effort high",
            "compile_ultra",
            "compile_ultra -retime\noptimize_registers",
            "set_max_fanout 8\ncompile_ultra\nbalance_buffer",
        ],
    )
    def test_every_flow_preserves_behaviour(self, commands):
        rng = np.random.default_rng(1)
        stimulus = [
            (int(rng.integers(256)), int(rng.integers(256))) for _ in range(8)
        ]
        golden = self.run_sequence(elaborate(self.DESIGN, "dut"), stimulus)
        shell = DCShell()
        shell.add_design("dut", self.DESIGN)
        result = shell.run_script(
            "read_verilog dut\nset_wire_load_model -name 5K_heavy_1k\n"
            "create_clock -period 1.0 clk\n" + commands
        )
        assert result.success, result.error
        synthesized = self.run_sequence(shell.netlist, stimulus)
        assert synthesized == golden, commands


class TestDatabaseRoundTrip:
    def test_entry_embedding_retrieves_itself(self, db):
        from repro.rag import EmbeddingRetriever

        retriever = EmbeddingRetriever(db)
        for name, entry in db.entries.items():
            hits = retriever.retrieve_designs(entry.embedding, k=1, rerank=False)
            assert hits[0].key == name

    def test_expert_scripts_execute(self, db):
        for entry in db.entries.values():
            shell = DCShell()
            shell.add_design(
                entry.design.name, entry.design.verilog, top=entry.design.top
            )
            result = shell.run_script(entry.expert_script)
            assert result.success, (entry.design.name, result.error)
